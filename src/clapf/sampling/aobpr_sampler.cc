#include "clapf/sampling/aobpr_sampler.h"

#include <algorithm>
#include <cmath>

#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"

namespace clapf {

AobprPairSampler::AobprPairSampler(const Dataset* dataset,
                                   const FactorModel* model,
                                   const Options& options, uint64_t seed)
    : dataset_(dataset),
      model_(model),
      options_(options),
      rng_(seed),
      active_users_(TrainableUsers(*dataset)),
      rank_list_(model),
      geometric_(options.tail_fraction) {
  CLAPF_CHECK(dataset != nullptr && model != nullptr);
  CLAPF_CHECK(!active_users_.empty());
  if (options_.refresh_interval > 0) {
    refresh_interval_ = options_.refresh_interval;
  } else {
    const double m = static_cast<double>(std::max(dataset->num_items(), 2));
    refresh_interval_ = static_cast<int64_t>(
        std::max(256.0, m * std::ceil(std::log2(m)) / 8.0));
  }
  if (options_.metrics != nullptr) {
    draws_metric_ = options_.metrics->GetCounter("sampler.aobpr.draws_total");
    rebuilds_metric_ =
        options_.metrics->GetCounter("sampler.aobpr.rebuilds_total");
    fallbacks_metric_ =
        options_.metrics->GetCounter("sampler.aobpr.uniform_fallbacks_total");
    depth_metric_ = options_.metrics->GetHistogram(
        "sampler.aobpr.negative_draw_depth", DrawDepthBuckets());
  }
}

PairSample AobprPairSampler::Sample() {
  if (++draws_since_refresh_ >= refresh_interval_) {
    rank_list_.Refresh();
    draws_since_refresh_ = 0;
    if (rebuilds_metric_ != nullptr) rebuilds_metric_->Inc();
  }
  if (draws_metric_ != nullptr) draws_metric_->Inc();

  PairSample p;
  p.u = active_users_[rng_.Uniform(active_users_.size())];
  auto items = dataset_->ItemsOf(p.u);
  p.i = items[rng_.Uniform(items.size())];

  const int32_t q = static_cast<int32_t>(
      rng_.Uniform(static_cast<uint64_t>(model_->num_factors())));
  const bool reversed =
      model_->UserFactors(p.u)[static_cast<size_t>(q)] < 0.0;
  const size_t m = static_cast<size_t>(dataset_->num_items());
  for (int attempt = 0; attempt < 64; ++attempt) {
    size_t pos = geometric_.Sample(m, rng_);
    ItemId j = rank_list_.ItemAt(q, pos, reversed);
    if (!dataset_->IsObserved(p.u, j)) {
      if (depth_metric_ != nullptr) {
        depth_metric_->Record(static_cast<double>(pos + 1));
      }
      p.j = j;
      return p;
    }
  }
  if (fallbacks_metric_ != nullptr) fallbacks_metric_->Inc();
  p.j = SampleUnobservedUniform(*dataset_, p.u, rng_);
  return p;
}

}  // namespace clapf
