#ifndef CLAPF_SAMPLING_UNIFORM_SAMPLER_H_
#define CLAPF_SAMPLING_UNIFORM_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/sampling/sampler.h"
#include "clapf/util/random.h"

namespace clapf {

/// Uniform CLAPF sampler (the paper's "Uniform Sampling"): u uniform over
/// users with observed items, i and k uniform over I_u^+, j uniform over the
/// unobserved items (rejection sampling). For users with a single observed
/// item, k == i, which zeroes the listwise pair but keeps the pairwise term
/// learning.
class UniformTripleSampler : public TripleSampler {
 public:
  /// `dataset` must outlive the sampler and contain >= 1 interaction, with at
  /// least one unobserved item for some user.
  UniformTripleSampler(const Dataset* dataset, uint64_t seed);

  Triple Sample() override;
  const char* name() const override { return "Uniform"; }

 private:
  const Dataset* dataset_;
  Rng rng_;
  std::vector<UserId> active_users_;
};

/// Uniform BPR pair sampler: u, i uniform over observed pairs, j uniform over
/// unobserved items of u.
class UniformPairSampler : public PairSampler {
 public:
  UniformPairSampler(const Dataset* dataset, uint64_t seed);

  PairSample Sample() override;
  const char* name() const override { return "UniformPair"; }

 private:
  const Dataset* dataset_;
  Rng rng_;
  std::vector<UserId> active_users_;
};

/// Shared helper: draws an item of `u` not observed in `dataset`, by
/// rejection. Requires the user to have at least one unobserved item.
ItemId SampleUnobservedUniform(const Dataset& dataset, UserId u, Rng& rng);

/// Shared helper: users of `dataset` with >= 1 observed item and >= 1
/// unobserved item (i.e. users trainable by pairwise methods).
std::vector<UserId> TrainableUsers(const Dataset& dataset);

}  // namespace clapf

#endif  // CLAPF_SAMPLING_UNIFORM_SAMPLER_H_
