#ifndef CLAPF_SAMPLING_DSS_SAMPLER_H_
#define CLAPF_SAMPLING_DSS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/obs/metrics.h"
#include "clapf/sampling/geometric.h"
#include "clapf/sampling/rank_list.h"
#include "clapf/sampling/sampler.h"
#include "clapf/util/random.h"

namespace clapf {

/// Which CLAPF instantiation the sampler feeds; DSS orients its rank lists
/// differently per variant (paper §5.2, Step 4). kNdcg is this library's
/// extension instantiation (the paper's conclusion invites further smoothed
/// listwise metrics); it shares the MRR orientation.
enum class ClapfVariant { kMap, kMrr, kNdcg };

/// Options for the Double Sampling Strategy.
struct DssOptions {
  ClapfVariant variant = ClapfVariant::kMap;
  /// Adaptively sample the positive companion k (DSS / "Positive Sampling").
  bool adaptive_positive = true;
  /// Adaptively sample the negative j (DSS / "Negative Sampling").
  bool adaptive_negative = true;
  /// Geometric head mass; smaller = more aggressive oversampling.
  double tail_fraction = 0.2;
  /// Draws between rank-list rebuilds; 0 = auto (m * ceil(log2(m)) / 8,
  /// echoing the paper's log(m)-scaled reset rule at single-draw granularity).
  int64_t refresh_interval = 0;
  /// Telemetry sink; null disables sampler metrics. When set, the sampler
  /// emits sampler.dss.draws_total, sampler.dss.rebuilds_total,
  /// sampler.dss.uniform_fallbacks_total, and the
  /// sampler.dss.negative_draw_depth histogram (geometric rank position of
  /// each accepted adaptive negative). Not owned; must outlive the sampler.
  MetricsRegistry* metrics = nullptr;
};

/// Double Sampling Strategy (paper §5.2): item i is uniform over I_u^+; the
/// companion k and the negative j are drawn from factor-ranked item lists
/// with geometric position sampling:
///  - pick a random latent factor q, orient the descending V_{.,q} list by
///    sgn(U_{u,q});
///  - CLAPF-MAP: k geometric from the *bottom* among observed items, j
///    geometric from the *top* among unobserved items;
///  - CLAPF-MRR: both k and j geometric from the *top*.
/// Disabling one of the adaptive halves yields the paper's "Positive
/// Sampling" / "Negative Sampling" ablations (Fig. 4).
class DssSampler : public TripleSampler {
 public:
  /// `dataset` and `model` must outlive the sampler; the model is read on
  /// every draw so the sampler adapts as training progresses.
  DssSampler(const Dataset* dataset, const FactorModel* model,
             const DssOptions& options, uint64_t seed);

  Triple Sample() override;
  const char* name() const override;

  /// Number of rank-list rebuilds so far (tests/diagnostics).
  int64_t refresh_count() const { return rank_list_.refresh_count(); }

 private:
  // Draws k from the user's observed items: geometric rank over their
  // factor-q values, from the top (largest first) or bottom.
  ItemId SampleObservedAdaptive(UserId u, int32_t q, bool reversed,
                                bool from_top);
  // Draws j from the unobserved items via the global factor ranking.
  ItemId SampleUnobservedAdaptive(UserId u, int32_t q, bool reversed);

  void MaybeRefresh();

  const Dataset* dataset_;
  const FactorModel* model_;
  DssOptions options_;
  Rng rng_;
  std::vector<UserId> active_users_;
  FactorRankList rank_list_;
  GeometricRankSampler geometric_;
  int64_t draws_since_refresh_ = 0;
  int64_t refresh_interval_ = 0;
  // Telemetry handles (null when options_.metrics is null).
  Counter* draws_metric_ = nullptr;
  Counter* rebuilds_metric_ = nullptr;
  Counter* fallbacks_metric_ = nullptr;
  Histogram* depth_metric_ = nullptr;
  // Scratch for per-user observed-item selection.
  std::vector<std::pair<double, ItemId>> scratch_;
};

}  // namespace clapf

#endif  // CLAPF_SAMPLING_DSS_SAMPLER_H_
