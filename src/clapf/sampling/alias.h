#ifndef CLAPF_SAMPLING_ALIAS_H_
#define CLAPF_SAMPLING_ALIAS_H_

#include <cstdint>
#include <vector>

#include "clapf/util/random.h"

namespace clapf {

/// Walker's alias method: O(n) construction, O(1) draws from an arbitrary
/// discrete distribution. Used for popularity-weighted negative sampling at
/// scale, where per-draw binary search over a CDF would cost O(log n).
class AliasTable {
 public:
  /// Builds the table for (unnormalized, non-negative) `weights`. At least
  /// one weight must be positive.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index with probability weights[i] / Σ weights.
  size_t Sample(Rng& rng) const;

  size_t size() const { return probability_.size(); }

  /// Normalized probability of index i (reconstructed; tests only). O(n).
  double ProbabilityOf(size_t i) const;

 private:
  std::vector<double> probability_;  // acceptance threshold per bucket
  std::vector<uint32_t> alias_;      // fallback index per bucket
};

}  // namespace clapf

#endif  // CLAPF_SAMPLING_ALIAS_H_
