#include "clapf/serving/model_shard.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "clapf/core/ranker.h"
#include "clapf/model/model_io.h"
#include "clapf/model/score_kernel.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"

namespace clapf {

namespace {

using Clock = std::chrono::steady_clock;

// Matches the monolithic ranker's injected kServeSlowBlock stall so sharded
// deadline drills exercise the same timing fault.
constexpr std::chrono::milliseconds kSlowBlockStall(2);

// Per-thread scatter scratch, mirroring the recommender's QueryArena: one
// scatter worker reuses its buffers across shards and queries, so after
// warm-up the only O(shard) work outside scoring is the bitmap reset.
struct ShardArena {
  std::vector<double> scores;
  std::vector<bool> excluded;
};

ShardArena& LocalArena() {
  thread_local ShardArena arena;
  return arena;
}

}  // namespace

ModelShard::ModelShard(int32_t id, ItemId begin, ItemId end,
                       const Dataset& full_history,
                       const std::vector<double>& full_popularity)
    : id_(id),
      begin_(begin),
      end_(end),
      history_(Dataset::SliceItemRange(full_history, begin, end)),
      popularity_(full_popularity.begin() + begin,
                  full_popularity.begin() + end) {
  CLAPF_CHECK(id >= 0);
}

Result<std::shared_ptr<ShardSlice>> ModelShard::BuildSlice(
    const FactorModel& candidate, bool packed, bool verify_integrity,
    int32_t packed_agreement_users, const std::string& context,
    const ShardAnnOptions* ann, const ShardSlice* previous,
    int64_t* ann_items_reassigned) const {
  auto slice =
      std::make_shared<ShardSlice>(candidate.SliceItems(begin_, end_));
  if (verify_integrity) {
    // The slice carries the full user matrix plus this shard's items, so
    // the finite scan + CRC round-trip covers exactly the parameters this
    // shard will serve — a corrupt user factor is caught by every shard's
    // gate, a corrupt item factor by its owner's.
    CLAPF_RETURN_IF_ERROR(VerifyModelIntegrity(slice->model, context));
  }
  if (packed) {
    auto snap =
        std::make_shared<PackedSnapshot>(PackedSnapshot::Build(slice->model));
    if (packed_agreement_users > 0) {
      CLAPF_RETURN_IF_ERROR(VerifyPackedAgreement(
          slice->model, *snap, packed_agreement_users, context));
    }
    slice->packed = std::move(snap);
  }
  if (packed && ann != nullptr) {
    if (ann_items_reassigned != nullptr) *ann_items_reassigned = -1;
    std::shared_ptr<IvfIndex> ivf;
    if (previous != nullptr && previous->ivf != nullptr) {
      int64_t reassigned = 0;
      auto rebuilt = IvfIndex::RebuildDirty(*previous->ivf, slice->model,
                                            ann->ivf, &reassigned);
      // Majority-dirty slices retrain from scratch: frozen centroids from
      // the previous slice would partition the moved geometry poorly and
      // the recall gate would (rightly) refuse the result.
      if (rebuilt.ok() && 2 * reassigned <= slice->model.num_items()) {
        ivf = std::make_shared<IvfIndex>(std::move(rebuilt).value());
        if (ann_items_reassigned != nullptr) {
          *ann_items_reassigned = reassigned;
        }
      }
    }
    if (ivf == nullptr) {
      ivf = std::make_shared<IvfIndex>(IvfIndex::Build(slice->model,
                                                       ann->ivf));
    }
    FaultInjector& faults = FaultInjector::Instance();
    if (faults.armed() && faults.ShouldFire(FaultPoint::kAnnCorruptIndex)) {
      // Per-shard desync drill: the armed hit schedule picks which shard's
      // index is scrambled, and only that shard's gate must refuse.
      ivf->DesyncForTesting();
    }
    if (ann->ivf.pq && faults.armed() &&
        faults.ShouldFire(FaultPoint::kAnnCorruptCodes)) {
      // Code-book corruption drill: geometry and floats stay intact, so
      // only the measured composed-recall gate below can catch it.
      ivf->CorruptPqForTesting();
    }
    if (ann->canary) {
      CLAPF_RETURN_IF_ERROR(VerifyIvfBinding(slice->model, *ivf, context));
      if (ann->recall_floor > 0.0) {
        const size_t gate_k =
            static_cast<size_t>(std::max<int32_t>(1, ann->recall_k));
        // With codes present, gate the composed quantized+re-rank path the
        // shard will actually serve — strictly stronger than the probe-only
        // check, since the survivors are a subset of the shortlist.
        CLAPF_RETURN_IF_ERROR(
            ivf->has_pq()
                ? VerifyPqRecall(*slice->packed, *ivf, ann->recall_users,
                                 gate_k, /*nprobe=*/0, /*rerank_budget=*/0,
                                 ann->recall_floor, context)
                : VerifyIvfRecall(*slice->packed, *ivf, ann->recall_users,
                                  gate_k, /*nprobe=*/0, ann->recall_floor,
                                  context));
      }
    }
    slice->ivf = std::move(ivf);
  }
  return slice;
}

std::vector<bool>* ModelShard::BuildExcluded(
    UserId u, const QueryOptions& options) const {
  std::vector<bool>* excluded = &LocalArena().excluded;
  excluded->assign(static_cast<size_t>(num_local_items()), false);
  for (ItemId i : history_.ItemsOf(u)) {
    (*excluded)[static_cast<size_t>(i)] = true;
  }
  for (ItemId i : options.exclude) {
    if (i >= begin_ && i < end_) {
      (*excluded)[static_cast<size_t>(i - begin_)] = true;
    }
  }
  return excluded;
}

Result<std::vector<ScoredItem>> ModelShard::ScoreTopK(
    const ShardSlice& slice, UserId u, size_t k, const QueryOptions& options,
    const std::optional<Clock::time_point>& deadline,
    ThresholdBroadcast* broadcast) const {
  const ItemId local_items = num_local_items();
  const size_t local_k = std::min(k, static_cast<size_t>(local_items));
  if (local_k == 0) return std::vector<ScoredItem>{};

  std::vector<bool>* excluded = BuildExcluded(u, options);
  FaultInjector& faults = FaultInjector::Instance();
  std::vector<ScoredItem> top;

  if (options.ann && options.use_packed && slice.ivf != nullptr &&
      slice.ivf->num_items() == local_items) {
    // IVF shortlist path: probe the shard-local index and re-rank the
    // shortlisted cluster ranges with the fused mapped kernel. The index
    // was built over the sliced model, so the "global" ids it emits are
    // shard-local ids — the excluded bitmap indexes them directly and the
    // final `+= begin_` below lifts them to catalog ids. The cross-shard
    // bar stays sound under ANN: a shortlist heap's threshold is a lower
    // bound on that shard's (and hence the global) k-th-best only among
    // scanned items, so the bar is raised from full heaps exactly as in
    // the exhaustive path and can only prune items below a real score.
    const IvfIndex& ivf = *slice.ivf;
    thread_local std::vector<IvfProbeRange> probes;
    const size_t min_items = local_k + history_.ItemsOf(u).size() +
                             options.exclude.size();
    ivf.SelectProbes(u, options.ann_nprobe, min_items, &probes, nullptr);
    const std::vector<IvfProbeRange>* scan_ranges = &probes;
    if (options.pq && ivf.has_pq()) {
      // Quantized first pass over this shard's own code book: stream the
      // int8 codes across the probe ranges and keep only rerank_budget
      // survivor blocks for the exact re-rank below. The cross-shard bar is
      // deliberately NOT applied to quantized scores — quantization error
      // could push a true global-top-k item under the bar — so the bar
      // kicks in only at the exact stage, where it remains sound.
      thread_local std::vector<IvfProbeRange> rerank_ranges;
      size_t budget = options.rerank_budget > 0
                          ? static_cast<size_t>(options.rerank_budget)
                          : static_cast<size_t>(std::max<int32_t>(
                                1, ivf.default_rerank_budget()));
      budget = std::max(budget, local_k);
      int64_t survivors = 0;
      CLAPF_RETURN_IF_ERROR(ivf.QuantizedShortlist(
          u, probes, budget, excluded, deadline, &rerank_ranges, &survivors));
      scan_ranges = &rerank_ranges;
    }
    TopKAccumulator acc(local_k);
    ItemId scanned = 0;
    for (size_t ri = 0; ri < scan_ranges->size(); ++ri) {
      // Sparse pq re-rank ranges each start on a cold block; prefetching a
      // few ranges ahead overlaps those misses with scoring.
      if (ri + 3 < scan_ranges->size()) {
        ivf.PrefetchRange((*scan_ranges)[ri + 3]);
      }
      const IvfProbeRange& range = (*scan_ranges)[ri];
      for (ItemId lo = range.begin; lo < range.end; lo += kRankerBlockItems) {
        const ItemId hi = std::min<ItemId>(range.end, lo + kRankerBlockItems);
        if (faults.armed() &&
            faults.ShouldFire(FaultPoint::kServeSlowBlock)) {
          std::this_thread::sleep_for(kSlowBlockStall);
        }
        const double bar =
            broadcast != nullptr
                ? broadcast->Get()
                : -std::numeric_limits<double>::infinity();
        ScoreBlocksTopKMapped(ivf.packed(), u, lo, hi,
                              ivf.local_to_global_data(), excluded, &acc,
                              bar);
        if (broadcast != nullptr && acc.full()) {
          broadcast->Raise(acc.threshold_score());
        }
        scanned += hi - lo;
        if (deadline && Clock::now() > *deadline) {
          return Status::DeadlineExceeded(
              "ann query for user " + std::to_string(u) +
              " expired in shard " + std::to_string(id_) +
              " after scoring " + std::to_string(scanned) +
              " shortlisted items");
        }
      }
    }
    top = acc.Take();
  } else if (options.use_packed && slice.packed != nullptr) {
    // Packed fast path: fused score + top-k over the shard's SIMD repack,
    // chunked like the monolithic ranker (fault + deadline poll per chunk).
    // Each chunk ends by raising the cross-shard bar to this heap's
    // threshold; the next chunk starts by reading the bar, so concurrent
    // shards prune each other mid-query.
    const PackedSnapshot& packed = *slice.packed;
    TopKAccumulator acc(local_k);
    for (ItemId lo = 0; lo < local_items; lo += kRankerBlockItems) {
      const ItemId hi = std::min<ItemId>(local_items, lo + kRankerBlockItems);
      if (faults.armed() && faults.ShouldFire(FaultPoint::kServeSlowBlock)) {
        std::this_thread::sleep_for(kSlowBlockStall);
      }
      const double bar =
          broadcast != nullptr
              ? broadcast->Get()
              : -std::numeric_limits<double>::infinity();
      ScoreBlocksTopK(packed, u, lo, hi, excluded, &acc, bar);
      if (broadcast != nullptr && acc.full()) {
        broadcast->Raise(acc.threshold_score());
      }
      if (deadline && Clock::now() > *deadline) {
        return Status::DeadlineExceeded(
            "query for user " + std::to_string(u) + " expired in shard " +
            std::to_string(id_) + " after scoring " + std::to_string(hi) +
            "/" + std::to_string(local_items) + " items");
      }
    }
    top = acc.Take();
  } else {
    // Exact double scan over the sliced model; scores are bit-identical to
    // the monolithic scan of the same items, so the gathered merge is too.
    std::vector<double>* scores = &LocalArena().scores;
    scores->resize(static_cast<size_t>(local_items));
    for (ItemId lo = 0; lo < local_items; lo += kRankerBlockItems) {
      const ItemId hi = std::min<ItemId>(local_items, lo + kRankerBlockItems);
      if (faults.armed() && faults.ShouldFire(FaultPoint::kServeSlowBlock)) {
        std::this_thread::sleep_for(kSlowBlockStall);
      }
      slice.model.ScoreItemRange(u, lo, hi, scores);
      if (deadline && Clock::now() > *deadline) {
        return Status::DeadlineExceeded(
            "query for user " + std::to_string(u) + " expired in shard " +
            std::to_string(id_) + " after scoring " + std::to_string(hi) +
            "/" + std::to_string(local_items) + " items");
      }
    }
    top = SelectTopK(*scores, *excluded, local_k);
  }

  for (ScoredItem& item : top) item.item += begin_;
  return top;
}

std::vector<ScoredItem> ModelShard::PopularityTopK(
    UserId u, size_t k, const QueryOptions& options) const {
  const size_t local_k =
      std::min(k, static_cast<size_t>(num_local_items()));
  if (local_k == 0) return {};
  std::vector<bool>* excluded = BuildExcluded(u, options);
  std::vector<ScoredItem> top = SelectTopK(popularity_, *excluded, local_k);
  for (ScoredItem& item : top) item.item += begin_;
  return top;
}

}  // namespace clapf
