#include "clapf/serving/model_shard.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "clapf/core/ranker.h"
#include "clapf/model/model_io.h"
#include "clapf/model/score_kernel.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"

namespace clapf {

namespace {

using Clock = std::chrono::steady_clock;

// Matches the monolithic ranker's injected kServeSlowBlock stall so sharded
// deadline drills exercise the same timing fault.
constexpr std::chrono::milliseconds kSlowBlockStall(2);

// Per-thread scatter scratch, mirroring the recommender's QueryArena: one
// scatter worker reuses its buffers across shards and queries, so after
// warm-up the only O(shard) work outside scoring is the bitmap reset.
struct ShardArena {
  std::vector<double> scores;
  std::vector<bool> excluded;
};

ShardArena& LocalArena() {
  thread_local ShardArena arena;
  return arena;
}

}  // namespace

ModelShard::ModelShard(int32_t id, ItemId begin, ItemId end,
                       const Dataset& full_history,
                       const std::vector<double>& full_popularity)
    : id_(id),
      begin_(begin),
      end_(end),
      history_(Dataset::SliceItemRange(full_history, begin, end)),
      popularity_(full_popularity.begin() + begin,
                  full_popularity.begin() + end) {
  CLAPF_CHECK(id >= 0);
}

Result<std::shared_ptr<ShardSlice>> ModelShard::BuildSlice(
    const FactorModel& candidate, bool packed, bool verify_integrity,
    int32_t packed_agreement_users, const std::string& context) const {
  auto slice =
      std::make_shared<ShardSlice>(candidate.SliceItems(begin_, end_));
  if (verify_integrity) {
    // The slice carries the full user matrix plus this shard's items, so
    // the finite scan + CRC round-trip covers exactly the parameters this
    // shard will serve — a corrupt user factor is caught by every shard's
    // gate, a corrupt item factor by its owner's.
    CLAPF_RETURN_IF_ERROR(VerifyModelIntegrity(slice->model, context));
  }
  if (packed) {
    auto snap =
        std::make_shared<PackedSnapshot>(PackedSnapshot::Build(slice->model));
    if (packed_agreement_users > 0) {
      CLAPF_RETURN_IF_ERROR(VerifyPackedAgreement(
          slice->model, *snap, packed_agreement_users, context));
    }
    slice->packed = std::move(snap);
  }
  return slice;
}

std::vector<bool>* ModelShard::BuildExcluded(
    UserId u, const QueryOptions& options) const {
  std::vector<bool>* excluded = &LocalArena().excluded;
  excluded->assign(static_cast<size_t>(num_local_items()), false);
  for (ItemId i : history_.ItemsOf(u)) {
    (*excluded)[static_cast<size_t>(i)] = true;
  }
  for (ItemId i : options.exclude) {
    if (i >= begin_ && i < end_) {
      (*excluded)[static_cast<size_t>(i - begin_)] = true;
    }
  }
  return excluded;
}

Result<std::vector<ScoredItem>> ModelShard::ScoreTopK(
    const ShardSlice& slice, UserId u, size_t k, const QueryOptions& options,
    const std::optional<Clock::time_point>& deadline,
    ThresholdBroadcast* broadcast) const {
  const ItemId local_items = num_local_items();
  const size_t local_k = std::min(k, static_cast<size_t>(local_items));
  if (local_k == 0) return std::vector<ScoredItem>{};

  std::vector<bool>* excluded = BuildExcluded(u, options);
  FaultInjector& faults = FaultInjector::Instance();
  std::vector<ScoredItem> top;

  if (options.use_packed && slice.packed != nullptr) {
    // Packed fast path: fused score + top-k over the shard's SIMD repack,
    // chunked like the monolithic ranker (fault + deadline poll per chunk).
    // Each chunk ends by raising the cross-shard bar to this heap's
    // threshold; the next chunk starts by reading the bar, so concurrent
    // shards prune each other mid-query.
    const PackedSnapshot& packed = *slice.packed;
    TopKAccumulator acc(local_k);
    for (ItemId lo = 0; lo < local_items; lo += kRankerBlockItems) {
      const ItemId hi = std::min<ItemId>(local_items, lo + kRankerBlockItems);
      if (faults.armed() && faults.ShouldFire(FaultPoint::kServeSlowBlock)) {
        std::this_thread::sleep_for(kSlowBlockStall);
      }
      const double bar =
          broadcast != nullptr
              ? broadcast->Get()
              : -std::numeric_limits<double>::infinity();
      ScoreBlocksTopK(packed, u, lo, hi, excluded, &acc, bar);
      if (broadcast != nullptr && acc.full()) {
        broadcast->Raise(acc.threshold_score());
      }
      if (deadline && Clock::now() > *deadline) {
        return Status::DeadlineExceeded(
            "query for user " + std::to_string(u) + " expired in shard " +
            std::to_string(id_) + " after scoring " + std::to_string(hi) +
            "/" + std::to_string(local_items) + " items");
      }
    }
    top = acc.Take();
  } else {
    // Exact double scan over the sliced model; scores are bit-identical to
    // the monolithic scan of the same items, so the gathered merge is too.
    std::vector<double>* scores = &LocalArena().scores;
    scores->resize(static_cast<size_t>(local_items));
    for (ItemId lo = 0; lo < local_items; lo += kRankerBlockItems) {
      const ItemId hi = std::min<ItemId>(local_items, lo + kRankerBlockItems);
      if (faults.armed() && faults.ShouldFire(FaultPoint::kServeSlowBlock)) {
        std::this_thread::sleep_for(kSlowBlockStall);
      }
      slice.model.ScoreItemRange(u, lo, hi, scores);
      if (deadline && Clock::now() > *deadline) {
        return Status::DeadlineExceeded(
            "query for user " + std::to_string(u) + " expired in shard " +
            std::to_string(id_) + " after scoring " + std::to_string(hi) +
            "/" + std::to_string(local_items) + " items");
      }
    }
    top = SelectTopK(*scores, *excluded, local_k);
  }

  for (ScoredItem& item : top) item.item += begin_;
  return top;
}

std::vector<ScoredItem> ModelShard::PopularityTopK(
    UserId u, size_t k, const QueryOptions& options) const {
  const size_t local_k =
      std::min(k, static_cast<size_t>(num_local_items()));
  if (local_k == 0) return {};
  std::vector<bool>* excluded = BuildExcluded(u, options);
  std::vector<ScoredItem> top = SelectTopK(popularity_, *excluded, local_k);
  for (ScoredItem& item : top) item.item += begin_;
  return top;
}

}  // namespace clapf
