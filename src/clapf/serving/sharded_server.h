#ifndef CLAPF_SERVING_SHARDED_SERVER_H_
#define CLAPF_SERVING_SHARDED_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/obs/metrics.h"
#include "clapf/recommender.h"
#include "clapf/serving/admission_queue.h"
#include "clapf/serving/flight_recorder.h"
#include "clapf/serving/governor.h"
#include "clapf/serving/model_server.h"
#include "clapf/serving/model_shard.h"
#include "clapf/serving/publish_request.h"
#include "clapf/serving/serving_stats.h"
#include "clapf/serving/shard_map.h"
#include "clapf/util/status.h"
#include "clapf/util/thread_pool.h"

namespace clapf {

/// Sharded, multi-tenant serving front end: the catalog is partitioned into
/// ServerOptions::num_shards contiguous item ranges (ShardMap), each shard
/// holding its own packed SIMD slice, canary gate, circuit breaker, flight
/// recorder, and counters, behind the same unified PublishModel /
/// RecommendOne / RecommendBatch surface as the monolithic ModelServer.
///
/// Query path (scatter-gather): one admission decision at the front (global
/// bound plus the per-tenant quota), then the admitted worker takes a
/// consistent cut of every shard's current slice under one mutex
/// acquisition and fans the routed shards out over a dedicated scatter pool.
/// Each shard runs the fused score+top-k kernel over its local items,
/// raising a shared ThresholdBroadcast bar so shards early-reject against
/// each other's k-th-best; the gathered per-shard heaps merge through one
/// TopKAccumulator whose (score desc, item asc) total order makes the result
/// BIT-IDENTICAL to a monolithic scan of the same model — same scores, same
/// order, same smaller-id tie-break (see tests/resilience's determinism
/// drill). Cold-start and min_score are decided once at the gather side, so
/// a user who is warm globally is never mistaken for cold in a shard where
/// they happen to have no history.
///
/// Publish path: a PublishRequest targets one shard or all of them, always
/// with a full-catalog candidate. Each target shard slices the candidate
/// (FactorModel::SliceItems — bit-identical doubles by construction),
/// repacks it, and runs its own canary gate (integrity + packed agreement;
/// the sampled-AUC probe runs once per all-shard publish on the exact
/// model). All built slices swap in under one mutex acquisition, so readers
/// never observe a half-published model; a one-shard publish reloads that
/// shard while the others keep serving untouched — incremental hot reload.
///
/// Tenancy: serving chains are keyed by tenant name, created on first
/// publish. Tenants share the catalog, history, and worker pools but have
/// independent slices, breaker windows, and (when
/// ServerOptions::per_tenant_quota is set) admission budgets.
///
/// Failure domains: the serve-time integrity check attributes a non-finite
/// score to the shard owning the item, and only that (tenant, shard)
/// breaker window is charged; a tripped shard rolls back to its previous
/// slice or degrades to its popularity slice alone while the other shards
/// keep serving the model. Each (tenant, shard) breaker then runs the same
/// half-open recovery as the monolithic server — cooldown, probe window,
/// reinstate-or-revert (BreakerOptions::half_open et al.) — scoped to its
/// own failure domain: only queries that consulted the shard advance its
/// cooldown and probe, and a probe verdict swaps that shard's slice alone.
/// The governor is deliberately global: its levers (admission depth,
/// deadline budget, packed forcing) are shared resources, so per-shard
/// governors would fight over one knob.
class ShardedModelServer {
 public:
  /// Serves `history` (copied) across ServerOptions::num_shards shards.
  /// `router` chooses scatter breadth per query (null = BroadcastRouter,
  /// the exact policy). No model is published yet, so every tenant starts
  /// degraded to popularity.
  ShardedModelServer(Dataset history, const ServerOptions& options,
                     std::shared_ptr<const ShardRouter> router = nullptr);

  /// Stops the governor ticker and drains in-flight queries.
  ~ShardedModelServer();

  /// The unified publish entry point: gates and swaps `request` (in-memory
  /// model or CRC-verified file; one shard or all; any tenant). On any gate
  /// failure nothing swaps and the prior slices keep serving.
  Status PublishModel(PublishRequest request);

  /// Scatter-gather top-k for one user of `tenant`. Outcomes match the
  /// monolithic server: the ranked list, DeadlineExceeded, Unavailable
  /// (global bound or tenant quota), OutOfRange, or Internal (shard-
  /// attributed integrity failure — that shard's breaker food).
  Result<std::vector<ScoredItem>> RecommendOne(
      UserId u, size_t k, const QueryOptions& options = {},
      const std::string& tenant = kDefaultTenant);

  /// Batched scatter-gather as one admitted unit of work; an expired
  /// deadline returns the completed prefix with the rest flagged.
  Result<BatchReply> RecommendBatch(std::span<const UserId> users, size_t k,
                                    const QueryOptions& options = {},
                                    const std::string& tenant =
                                        kDefaultTenant);

  const ShardMap& shard_map() const { return shard_map_; }
  int32_t num_shards() const { return shard_map_.num_shards(); }

  /// Tenants with a serving chain (publish creates one), sorted by name.
  std::vector<std::string> tenants() const;

  /// Per-shard serving versions for `tenant`, ascending shard order; 0 for
  /// a shard with no valid slice. An unknown tenant gets all zeros.
  std::vector<int64_t> shard_versions(
      const std::string& tenant = kDefaultTenant) const;

  /// True while ANY shard of `tenant` answers from the popularity fallback
  /// (no valid slice) — including the never-published and unknown-tenant
  /// cases.
  bool degraded(const std::string& tenant = kDefaultTenant) const;

  /// Global counters plus the per-shard breakdown, shards in ascending id
  /// order (deterministic aggregation).
  ShardedStatsSnapshot stats() const;

  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry* mutable_metrics() { return &metrics_; }

  /// The server-wide flight recorder (every event, all shards).
  const FlightRecorder& flight_recorder() const { return recorder_; }

  /// Shard-scoped stream: only shard `s`'s lifecycle and failures, so a
  /// one-shard incident reads without grepping the global stream.
  const FlightRecorder& shard_flight_recorder(int32_t shard) const {
    return *shard_recorders_[static_cast<size_t>(shard)];
  }

  /// Dumps the global flight recorder as JSON to `path` (atomic write).
  Status DumpFlightRecorder(const std::string& path,
                            const FlightDumpOptions& options = {}) const;

  const ServingGovernor& governor() const { return *governor_; }
  void TickGovernor() { governor_->Tick(); }

  const Dataset& history() const { return history_; }

 private:
  /// One (tenant, shard) serving chain. current/previous are guarded by
  /// snapshot_mu_ (the RCU pattern, per shard).
  struct ShardChain {
    std::shared_ptr<const ShardSlice> current;
    std::shared_ptr<const ShardSlice> previous;  // breaker rollback target
    // Half-open recovery (guarded by snapshot_mu_ like the chain itself):
    // the slice the breaker rolled back from (probe candidate), and what
    // `current` pointed at before the probe swapped the candidate back in
    // (revert target).
    std::shared_ptr<const ShardSlice> tripped;
    std::shared_ptr<const ShardSlice> probe_fallback;
  };
  struct TenantState {
    std::vector<ShardChain> chains;  // one per shard
  };
  /// Tumbling-window breaker phase of one (tenant, shard). kClosed judges
  /// full windows and trips; kCooldown counts consulted queries toward the
  /// probe; kHalfOpen judges the probe window against the re-admitted slice.
  enum class ShardBreakerState { kClosed, kCooldown, kHalfOpen };
  /// Per-(tenant, shard) breaker window and half-open state, guarded by
  /// breaker_mu_. A publish to the shard resets the whole struct — a fresh
  /// slice starts closed with an empty window.
  struct BreakerWindow {
    int64_t queries = 0;
    int64_t errors = 0;
    ShardBreakerState state = ShardBreakerState::kClosed;
    int64_t cooldown_left = 0;  // consulted queries until the probe opens
    int64_t probe_left = 0;     // judged queries left in the probe window
    int64_t probe_errors = 0;   // internal errors seen during the probe
  };
  /// What a finished query pins on the shards it touched, for stats and
  /// breaker attribution.
  struct QueryAttribution {
    std::vector<int32_t> consulted;  // shards scored, ascending
    int32_t blame = -1;              // shard charged with the error, or -1
  };

  /// Resolves the request's candidate (in-memory vs file) and validates
  /// routing. Gate-style failures are recorded as canary rejects.
  Result<FactorModel> ResolveCandidate(PublishRequest* request);

  /// Consistent cut of `tenant`'s chains (one mutex hold). Empty when the
  /// tenant has never been published to.
  std::vector<std::shared_ptr<const ShardSlice>> AcquireCut(
      const std::string& tenant) const;

  /// Pool-worker entries.
  Result<std::vector<ScoredItem>> ServeOne(UserId u, size_t k,
                                           const QueryOptions& options,
                                           const std::string& tenant,
                                           QueryAttribution* attr);
  Result<BatchReply> ServeBatch(std::span<const UserId> users, size_t k,
                                const QueryOptions& options,
                                const std::string& tenant,
                                QueryAttribution* attr);

  /// The scatter-gather core for one (validated) user against one cut.
  Result<std::vector<ScoredItem>> ServeUser(
      UserId u, size_t k, const QueryOptions& options,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      const std::vector<std::shared_ptr<const ShardSlice>>& cut,
      QueryAttribution* attr);

  /// Global popularity fallback (identical to the monolithic degraded
  /// path).
  Result<std::vector<ScoredItem>> ServeDegraded(
      UserId u, size_t k, const QueryOptions& options) const;

  /// Stats + per-shard breaker accounting for one finished query.
  void RecordOutcome(const Status& status, const std::string& tenant,
                     const QueryAttribution& attr);

  /// Breaker action for one (tenant, shard): roll the shard back to its
  /// previous slice or degrade it to popularity; the other shards are
  /// untouched. Returns true when the rolled-back-from slice was stashed
  /// for a later half-open probe.
  bool TripShardBreaker(const std::string& tenant, int32_t shard);

  /// Half-open transitions for one (tenant, shard); called off breaker_mu_
  /// (they take snapshot_mu_), exactly like the monolithic server's
  /// BeginProbe/ResolveProbe. BeginShardProbe returns false when a publish
  /// superseded the stashed slice and there is nothing to probe.
  bool BeginShardProbe(const std::string& tenant, int32_t shard);
  void ResolveShardProbe(const std::string& tenant, int32_t shard,
                         bool recovered, double error_rate);

  /// Records one shard-scoped event into both the global and the shard's
  /// own recorder.
  void RecordShardEvent(int32_t shard, FlightEventKind kind,
                        const std::string& detail, int64_t a = 0,
                        int64_t b = 0, double x = 0.0);

  Dataset history_;
  std::vector<double> popularity_;  // full-catalog fallback scores
  ServerOptions options_;
  Dataset probe_train_;  // canary probe split (all-shard publishes)
  Dataset probe_test_;
  ShardMap shard_map_;
  std::shared_ptr<const ShardRouter> router_;
  std::vector<ModelShard> shards_;

  mutable std::mutex snapshot_mu_;
  std::map<std::string, TenantState> tenants_;  // created on first publish
  int64_t next_version_ = 1;  // one ticket per publish, all tenants

  std::mutex breaker_mu_;
  std::map<std::pair<std::string, int32_t>, BreakerWindow> breaker_windows_;

  // Declaration order mirrors ModelServer: the registry precedes every view
  // into it, the recorders precede the pools whose workers write them, and
  // the governor comes last so its ticker never outlives what it observes.
  MetricsRegistry metrics_;
  Histogram* query_latency_;  // serving.query.latency_us
  Histogram* batch_latency_;  // serving.batch.latency_us
  FlightRecorder recorder_;
  std::vector<std::unique_ptr<FlightRecorder>> shard_recorders_;
  AdmissionQueue queue_;
  std::unique_ptr<ThreadPool> scatter_pool_;  // null when num_shards == 1
  ServingStats stats_;
  std::vector<std::unique_ptr<ShardServingStats>> shard_stats_;
  std::unique_ptr<ServingGovernor> governor_;
};

}  // namespace clapf

#endif  // CLAPF_SERVING_SHARDED_SERVER_H_
