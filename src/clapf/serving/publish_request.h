#ifndef CLAPF_SERVING_PUBLISH_REQUEST_H_
#define CLAPF_SERVING_PUBLISH_REQUEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "clapf/model/factor_model.h"

namespace clapf {

/// Publish target meaning "replace every shard" — the default, and the only
/// meaningful target on a single-shard server.
inline constexpr int32_t kAllShards = -1;

/// The tenant a single-tenant deployment serves; every query and publish
/// that does not name a tenant lands here.
inline constexpr const char* kDefaultTenant = "default";

/// The one publish surface of the serving layer. A request carries either an
/// in-memory candidate model or a path to a saved one (CRC-verified by the
/// wire format on load) — never both — plus routing: which shard the
/// candidate replaces (kAllShards for a full swap) and which tenant's
/// serving chain it lands in.
///
/// The single-argument constructors are implicit by design so the unified
/// entry point reads exactly like the two calls it replaced:
///
///   server.PublishModel(model);          // was server.Publish(model)
///   server.PublishModel("model.clapf");  // was server.PublishFromFile(path)
///   server.PublishModel(
///       PublishRequest(model).WithShard(2).WithTenant("acme"));
///
/// The candidate model is always full-catalog dimensioned, even when only
/// one shard is targeted: the server slices out the items the target shard
/// owns and leaves every other shard untouched.
struct PublishRequest {
  PublishRequest() = default;
  // NOLINTNEXTLINE(google-explicit-constructor)
  PublishRequest(FactorModel candidate) : model(std::move(candidate)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  PublishRequest(std::string model_path) : path(std::move(model_path)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  PublishRequest(const char* model_path) : path(model_path) {}

  /// Fluent routing setters for one-line call sites.
  PublishRequest& WithShard(int32_t s) & {
    shard = s;
    return *this;
  }
  PublishRequest&& WithShard(int32_t s) && {
    shard = s;
    return std::move(*this);
  }
  PublishRequest& WithTenant(std::string t) & {
    tenant = std::move(t);
    return *this;
  }
  PublishRequest&& WithTenant(std::string t) && {
    tenant = std::move(t);
    return std::move(*this);
  }

  /// In-memory candidate; mutually exclusive with `path`.
  std::optional<FactorModel> model;
  /// Path to a SaveModel file; mutually exclusive with `model`.
  std::string path;
  /// Shard whose slice the candidate replaces, or kAllShards.
  int32_t shard = kAllShards;
  /// Serving chain the publish lands in; created on first publish.
  std::string tenant = kDefaultTenant;
};

}  // namespace clapf

#endif  // CLAPF_SERVING_PUBLISH_REQUEST_H_
