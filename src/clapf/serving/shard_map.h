#ifndef CLAPF_SERVING_SHARD_MAP_H_
#define CLAPF_SERVING_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clapf/data/dataset.h"

namespace clapf {

/// Static partition of the item catalog into contiguous shards. Boundaries
/// are aligned to kPackedBlockItems (8) so every shard's packed snapshot
/// repacks whole SIMD blocks, and blocks are spread as evenly as possible
/// (the first `blocks % shards` shards get one extra block). The requested
/// shard count is clamped to [1, number of blocks] so no shard is ever
/// empty on a non-empty catalog.
///
/// The map is immutable after Create: scatter-gather serving, per-shard
/// publishes, and error attribution all key off the same boundaries.
class ShardMap {
 public:
  /// Single shard covering an empty catalog.
  ShardMap() : num_items_(0), bounds_{0, 0} {}

  /// Partitions `num_items` (>= 0) into `num_shards` contiguous ranges;
  /// `num_shards` is clamped to [1, ceil(num_items / 8)] (and to 1 on an
  /// empty catalog).
  static ShardMap Create(int32_t num_items, int32_t num_shards);

  int32_t num_shards() const {
    return static_cast<int32_t>(bounds_.size()) - 1;
  }
  int32_t num_items() const { return num_items_; }

  /// Half-open item range [begin(s), end(s)) owned by shard `s`.
  ItemId begin(int32_t shard) const {
    return bounds_[static_cast<size_t>(shard)];
  }
  ItemId end(int32_t shard) const {
    return bounds_[static_cast<size_t>(shard) + 1];
  }
  int32_t size(int32_t shard) const { return end(shard) - begin(shard); }

  /// The shard owning `item`; item must be in [0, num_items).
  int32_t ShardOfItem(ItemId item) const;

  /// "ShardMap(items=100, shards=3: [0,40) [40,72) [72,100))" for logs.
  std::string ToString() const;

 private:
  int32_t num_items_;
  std::vector<ItemId> bounds_;  // num_shards + 1 entries, bounds_[0] == 0
};

/// Pluggable scatter-breadth policy: which shards a top-k query for `u`
/// must consult. The default BroadcastRouter consults every shard, which is
/// the only policy that preserves exact full-catalog top-k; narrower routers
/// (e.g. probing only shards a learned index nominates) trade recall for
/// fan-out and are the extension point this interface exists for.
///
/// Implementations must be thread-safe: Route runs concurrently on query
/// workers. The returned ids are sanitized by the server (clamped to valid
/// shards, sorted, deduplicated); an empty route falls back to broadcast.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// Appends the shards to consult for user `u` into `shards` (cleared
  /// first by the caller).
  virtual void Route(UserId u, const ShardMap& map,
                     std::vector<int32_t>* shards) const = 0;
};

/// Consults every shard — exact scatter-gather.
class BroadcastRouter final : public ShardRouter {
 public:
  void Route(UserId /*u*/, const ShardMap& map,
             std::vector<int32_t>* shards) const override {
    for (int32_t s = 0; s < map.num_shards(); ++s) shards->push_back(s);
  }
};

}  // namespace clapf

#endif  // CLAPF_SERVING_SHARD_MAP_H_
