#ifndef CLAPF_SERVING_ADMISSION_QUEUE_H_
#define CLAPF_SERVING_ADMISSION_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "clapf/obs/metrics.h"
#include "clapf/util/status.h"
#include "clapf/util/thread_pool.h"

namespace clapf {

/// Bounded admission gate in front of a worker pool. Work past
/// `max_depth` pending-or-running tasks is refused with Unavailable
/// instead of queueing — under overload the server sheds requests with a
/// typed error while memory stays bounded, rather than growing an
/// unbounded backlog whose every entry will miss its deadline anyway
/// (classic admission control, cf. SRE load-shedding practice).
class AdmissionQueue {
 public:
  /// Pool of `num_threads` workers admitting at most `max_depth` tasks.
  /// Lifetime counters land in `metrics` (`serving.admission.admitted_total`
  /// / `serving.admission.shed_total`); pass null to use a private registry,
  /// which keeps the admitted()/shed() accessors working standalone.
  AdmissionQueue(int num_threads, int64_t max_depth,
                 MetricsRegistry* metrics = nullptr);

  /// Admits `task` unless the queue is at `max_depth`. On admission the task
  /// will run on a pool worker; on refusal returns Unavailable and `task` is
  /// dropped untouched. Thread-safe.
  Status Submit(std::function<void()> task);

  /// Multi-tenant admission: admits `task` only when both the global
  /// `max_depth` bound and `tenant`'s own in-flight bound hold. `quota` <= 0
  /// means the tenant is unbounded (global bound only). A quota refusal
  /// returns Unavailable and counts in both shed() and quota_shed() — one
  /// tenant's burst sheds against its own budget instead of starving the
  /// others through the shared bound. Thread-safe.
  Status SubmitForTenant(const std::string& tenant, int64_t quota,
                         std::function<void()> task);

  /// Tasks admitted for `tenant` (via SubmitForTenant) not yet finished.
  int64_t TenantInFlight(const std::string& tenant) const;

  /// Blocks until every admitted task has finished.
  void Wait();

  /// Tasks admitted but not yet finished.
  int64_t depth() const { return pool_.InFlight(); }
  int64_t max_depth() const {
    return max_depth_.load(std::memory_order_relaxed);
  }

  /// Moves the admission bound at runtime (clamped to >= 1) — the serving
  /// governor's lever. Already-admitted tasks are unaffected; the new bound
  /// applies from the next Submit. Thread-safe.
  void set_max_depth(int64_t max_depth) {
    max_depth_.store(std::max<int64_t>(1, max_depth),
                     std::memory_order_relaxed);
  }

  /// Lifetime counters for observability.
  int64_t admitted() const { return admitted_->Value(); }
  int64_t shed() const { return shed_->Value(); }
  /// Sheds caused by a tenant quota (also counted in shed()).
  int64_t quota_shed() const { return quota_shed_->Value(); }

 private:
  ThreadPool pool_;
  std::atomic<int64_t> max_depth_;
  std::unique_ptr<MetricsRegistry> owned_registry_;  // null when shared
  Counter* admitted_;
  Counter* shed_;
  Counter* quota_shed_;

  // Per-tenant in-flight counts, created on first SubmitForTenant. Guarded
  // by tenant_mu_: admission checks and the post-run decrement both take it,
  // so a tenant can never exceed its quota by racing submissions.
  mutable std::mutex tenant_mu_;
  std::unordered_map<std::string, int64_t> tenant_in_flight_;
};

}  // namespace clapf

#endif  // CLAPF_SERVING_ADMISSION_QUEUE_H_
