#include "clapf/serving/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "clapf/obs/exporter.h"
#include "clapf/util/fs.h"

namespace clapf {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

// Details are short ASCII status text, but a model-load error message could
// smuggle in a quote or control byte; escape the JSON string minimally.
std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kGovernorAdjust: return "governor-adjust";
    case FlightEventKind::kBreakerTrip: return "breaker-trip";
    case FlightEventKind::kRollback: return "rollback";
    case FlightEventKind::kDegrade: return "degrade";
    case FlightEventKind::kProbeStart: return "probe-start";
    case FlightEventKind::kProbeRecovered: return "probe-recovered";
    case FlightEventKind::kProbeFailed: return "probe-failed";
    case FlightEventKind::kPublish: return "publish";
    case FlightEventKind::kCanaryReject: return "canary-reject";
    case FlightEventKind::kShed: return "shed";
    case FlightEventKind::kDeadlineMiss: return "deadline-miss";
    case FlightEventKind::kSlowQuery: return "slow-query";
    case FlightEventKind::kInternalError: return "internal-error";
    case FlightEventKind::kWalRecovery: return "wal-recovery";
    case FlightEventKind::kOnlinePublish: return "online-publish";
    case FlightEventKind::kAucRegressionRollback:
      return "auc-regression-rollback";
    case FlightEventKind::kNumFlightEventKinds: break;
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(capacity)),
      mask_(capacity_ - 1),
      start_(std::chrono::steady_clock::now()),
      slots_(capacity_) {}

void FlightRecorder::Record(FlightEventKind kind, std::string_view detail,
                            int64_t a, int64_t b, double x) {
  FlightEvent event;
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_seq_cst);
  event.seq = ticket;
  event.elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  event.kind = kind;
  event.a = a;
  event.b = b;
  event.x = x;
  const size_t n = std::min(detail.size(), kFlightEventDetailBytes - 1);
  std::memcpy(event.detail, detail.data(), n);
  event.detail[n] = '\0';

  uint64_t words[kPayloadWords] = {};
  std::memcpy(words, &event, sizeof(event));

  Slot& slot = slots_[ticket & mask_];
  // Per-slot seqlock, all sequentially consistent: the odd "in progress"
  // value is globally ordered before the word stores, which are ordered
  // before the even "complete" value, so a reader whose before/after
  // sequence loads both see `complete` cannot have mixed words from two
  // writers racing on a wrapped slot.
  slot.seq.store(ticket * 2 + 1, std::memory_order_seq_cst);
  for (size_t i = 0; i < kPayloadWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_seq_cst);
  }
  slot.seq.store(ticket * 2 + 2, std::memory_order_seq_cst);
}

bool FlightRecorder::ReadSlot(uint64_t ticket, FlightEvent* out) const {
  const Slot& slot = slots_[ticket & mask_];
  const uint64_t want = ticket * 2 + 2;
  if (slot.seq.load(std::memory_order_seq_cst) != want) return false;
  uint64_t words[kPayloadWords];
  for (size_t i = 0; i < kPayloadWords; ++i) {
    words[i] = slot.words[i].load(std::memory_order_seq_cst);
  }
  if (slot.seq.load(std::memory_order_seq_cst) != want) return false;
  std::memcpy(out, words, sizeof(FlightEvent));
  return true;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  const uint64_t end = next_.load(std::memory_order_seq_cst);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<FlightEvent> events;
  events.reserve(static_cast<size_t>(end - begin));
  for (uint64_t t = begin; t < end; ++t) {
    FlightEvent event;
    // A slot that fails validation is being rewritten by a racing writer
    // (or, near `begin`, was already overwritten): skip it rather than
    // block — the dump is a best-effort view of a live system.
    if (ReadSlot(t, &event)) events.push_back(event);
  }
  return events;
}

std::string FlightRecorder::DumpJson(const FlightDumpOptions& options) const {
  const std::vector<FlightEvent> events = Snapshot();
  std::string out = "{\"flight_recorder\":{\"capacity\":";
  out += std::to_string(capacity_);
  out += ",\"recorded\":";
  out += std::to_string(recorded());
  out += ",\"dropped\":";
  out += std::to_string(dropped());
  out += ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    if (i != 0) out += ",";
    out += "{\"seq\":";
    out += std::to_string(e.seq);
    out += ",\"elapsed_us\":";
    out += std::to_string(options.include_timestamps ? e.elapsed_us : 0);
    out += ",\"kind\":\"";
    out += FlightEventKindName(e.kind);
    out += "\",\"detail\":\"";
    out += EscapeJson(e.detail);
    out += "\",\"a\":";
    out += std::to_string(e.a);
    out += ",\"b\":";
    out += std::to_string(e.b);
    out += ",\"x\":";
    out += FormatMetricValue(e.x);
    out += "}";
  }
  out += "]}}\n";
  return out;
}

Status FlightRecorder::DumpJsonFile(const std::string& path,
                                    const FlightDumpOptions& options) const {
  return WriteFileAtomic(path, DumpJson(options));
}

}  // namespace clapf
