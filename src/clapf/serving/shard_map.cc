#include "clapf/serving/shard_map.h"

#include <algorithm>
#include <sstream>

#include "clapf/model/packed_snapshot.h"
#include "clapf/util/logging.h"

namespace clapf {

ShardMap ShardMap::Create(int32_t num_items, int32_t num_shards) {
  CLAPF_CHECK(num_items >= 0);
  const int32_t blocks =
      std::max<int32_t>(1, (num_items + kPackedBlockItems - 1) /
                               kPackedBlockItems);
  const int32_t shards = std::min(std::max(num_shards, 1), blocks);

  ShardMap map;
  map.num_items_ = num_items;
  map.bounds_.assign(1, 0);
  map.bounds_.reserve(static_cast<size_t>(shards) + 1);
  const int32_t base = blocks / shards;
  const int32_t extra = blocks % shards;
  int32_t block_bound = 0;
  for (int32_t s = 0; s < shards; ++s) {
    block_bound += base + (s < extra ? 1 : 0);
    map.bounds_.push_back(
        std::min<ItemId>(num_items, block_bound * kPackedBlockItems));
  }
  map.bounds_.back() = num_items;
  return map;
}

int32_t ShardMap::ShardOfItem(ItemId item) const {
  CLAPF_CHECK(item >= 0 && item < num_items_);
  // First bound strictly greater than `item`, minus the leading zero bound.
  auto it = std::upper_bound(bounds_.begin() + 1, bounds_.end(), item);
  return static_cast<int32_t>(it - (bounds_.begin() + 1));
}

std::string ShardMap::ToString() const {
  std::ostringstream os;
  os << "ShardMap(items=" << num_items_ << ", shards=" << num_shards() << ":";
  for (int32_t s = 0; s < num_shards(); ++s) {
    os << " [" << begin(s) << "," << end(s) << ")";
  }
  os << ")";
  return os.str();
}

}  // namespace clapf
