#include "clapf/serving/admission_queue.h"

#include <chrono>
#include <thread>
#include <utility>

#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"

namespace clapf {

namespace {
// How long an injected kServeQueueStall parks a worker before its task:
// long enough that a burst of concurrent requests piles past max_depth.
constexpr std::chrono::milliseconds kQueueStallSleep(20);
}  // namespace

AdmissionQueue::AdmissionQueue(int num_threads, int64_t max_depth,
                               MetricsRegistry* metrics)
    : pool_(num_threads), max_depth_(max_depth) {
  CLAPF_CHECK(max_depth >= 1);
  if (metrics == nullptr) {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    metrics = owned_registry_.get();
  }
  admitted_ = metrics->GetCounter("serving.admission.admitted_total");
  shed_ = metrics->GetCounter("serving.admission.shed_total");
}

Status AdmissionQueue::Submit(std::function<void()> task) {
  auto wrapped = [task = std::move(task)]() mutable {
    FaultInjector& faults = FaultInjector::Instance();
    if (faults.armed() && faults.ShouldFire(FaultPoint::kServeQueueStall)) {
      std::this_thread::sleep_for(kQueueStallSleep);
    }
    task();
  };
  const int64_t bound = max_depth();
  if (!pool_.TrySubmit(std::move(wrapped), bound)) {
    shed_->Inc();
    return Status::Unavailable(
        "admission queue full (" + std::to_string(bound) +
        " in flight); request shed");
  }
  admitted_->Inc();
  return Status::OK();
}

void AdmissionQueue::Wait() { pool_.Wait(); }

}  // namespace clapf
