#include "clapf/serving/admission_queue.h"

#include <chrono>
#include <thread>
#include <utility>

#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"

namespace clapf {

namespace {
// How long an injected kServeQueueStall parks a worker before its task:
// long enough that a burst of concurrent requests piles past max_depth.
constexpr std::chrono::milliseconds kQueueStallSleep(20);
}  // namespace

AdmissionQueue::AdmissionQueue(int num_threads, int64_t max_depth,
                               MetricsRegistry* metrics)
    : pool_(num_threads), max_depth_(max_depth) {
  CLAPF_CHECK(max_depth >= 1);
  if (metrics == nullptr) {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    metrics = owned_registry_.get();
  }
  admitted_ = metrics->GetCounter("serving.admission.admitted_total");
  shed_ = metrics->GetCounter("serving.admission.shed_total");
  quota_shed_ = metrics->GetCounter("serving.admission.quota_shed_total");
}

Status AdmissionQueue::Submit(std::function<void()> task) {
  auto wrapped = [task = std::move(task)]() mutable {
    FaultInjector& faults = FaultInjector::Instance();
    if (faults.armed() && faults.ShouldFire(FaultPoint::kServeQueueStall)) {
      std::this_thread::sleep_for(kQueueStallSleep);
    }
    task();
  };
  const int64_t bound = max_depth();
  if (!pool_.TrySubmit(std::move(wrapped), bound)) {
    shed_->Inc();
    return Status::Unavailable(
        "admission queue full (" + std::to_string(bound) +
        " in flight); request shed");
  }
  admitted_->Inc();
  return Status::OK();
}

Status AdmissionQueue::SubmitForTenant(const std::string& tenant,
                                       int64_t quota,
                                       std::function<void()> task) {
  if (quota > 0) {
    std::lock_guard<std::mutex> lock(tenant_mu_);
    int64_t& in_flight = tenant_in_flight_[tenant];
    if (in_flight >= quota) {
      quota_shed_->Inc();
      shed_->Inc();
      return Status::Unavailable(
          "tenant \"" + tenant + "\" quota reached (" +
          std::to_string(in_flight) + "/" + std::to_string(quota) +
          " in flight); request shed");
    }
    ++in_flight;
  }
  Status admitted = Submit(
      [this, tenant, task = std::move(task), quota]() mutable {
        task();
        if (quota > 0) {
          std::lock_guard<std::mutex> lock(tenant_mu_);
          --tenant_in_flight_[tenant];
        }
      });
  if (!admitted.ok() && quota > 0) {
    // Refused at the global bound after the quota reservation: release it.
    std::lock_guard<std::mutex> lock(tenant_mu_);
    --tenant_in_flight_[tenant];
  }
  return admitted;
}

int64_t AdmissionQueue::TenantInFlight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  auto it = tenant_in_flight_.find(tenant);
  return it != tenant_in_flight_.end() ? it->second : 0;
}

void AdmissionQueue::Wait() { pool_.Wait(); }

}  // namespace clapf
