#ifndef CLAPF_SERVING_MODEL_SHARD_H_
#define CLAPF_SERVING_MODEL_SHARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/model/ivf_index.h"
#include "clapf/model/packed_snapshot.h"
#include "clapf/recommender.h"
#include "clapf/util/status.h"
#include "clapf/util/top_k.h"

namespace clapf {

/// One published model version restricted to a shard's item range: the
/// sliced exact model plus (when packed serving is on) its SIMD repack.
/// Immutable once published; query workers share it read-only via
/// shared_ptr, exactly like the monolithic server's Snapshot.
struct ShardSlice {
  explicit ShardSlice(FactorModel sliced_model)
      : model(std::move(sliced_model)) {}

  int64_t version = 0;
  FactorModel model;  // items renumbered to [0, shard size)
  std::shared_ptr<const PackedSnapshot> packed;  // null when packed is off
  std::shared_ptr<const IvfIndex> ivf;           // null when ANN is off
};

/// Per-shard ANN build + gate parameters for BuildSlice. Each shard builds
/// its own IvfIndex over its sliced catalog, and each index is gated
/// independently — a corrupt or low-recall index refuses only its own
/// shard's slice, never its siblings'.
struct ShardAnnOptions {
  /// With `ivf.pq` on, every slice gets its own code book (trained on the
  /// shard's items, frozen across that shard's incremental rebuilds) and
  /// the recall check below measures the composed quantized+re-rank path.
  IvfOptions ivf;
  /// Structural/binding verification plus the measured recall check below.
  bool canary = true;
  /// Publish-time recall@recall_k floor at the index's default nprobe,
  /// measured against the shard's exact packed scan; <= 0 disables the
  /// measured check (binding + structure still run when `canary` is set).
  double recall_floor = 0.95;
  int32_t recall_users = 16;
  int32_t recall_k = 10;
};

/// Cross-shard early-reject bar for one scatter-gather query. Each shard
/// publishes its full-heap threshold after every scoring chunk; every shard
/// reads the running maximum and skips scores strictly below it. Any one
/// shard's k-th-best is a lower bound on the global k-th-best, and the
/// rejection test is strict (ties still reach Push for the smaller-id
/// tie-break), so the broadcast can only skip items that cannot be in the
/// global top-k — merged results stay bit-identical to a monolithic scan.
///
/// Relaxed atomics are sufficient: the bar is monotone and a stale read is
/// merely a weaker (always-correct) bound.
class ThresholdBroadcast {
 public:
  ThresholdBroadcast()
      : floor_(-std::numeric_limits<double>::infinity()) {}

  /// Raises the bar to at least `threshold` (monotone max).
  void Raise(double threshold) {
    double cur = floor_.load(std::memory_order_relaxed);
    while (threshold > cur &&
           !floor_.compare_exchange_weak(cur, threshold,
                                         std::memory_order_relaxed)) {
    }
  }

  double Get() const { return floor_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> floor_;
};

/// Immutable identity of one catalog shard — its item range, the serving
/// history and popularity table restricted to it — plus the two operations
/// the sharded server fans out: building a gated slice of a candidate model
/// and answering a local top-k scatter query.
///
/// All ids crossing this class's boundary are global: queries hand in global
/// exclusion lists and get back global item ids; the local renumbering
/// ([0, size) = [begin, end) - begin) is an internal layout detail.
///
/// Thread-safe: const methods only, and the per-thread scratch they use is
/// thread_local.
class ModelShard {
 public:
  /// Shard `id` owning items [begin, end) of `full_history`'s catalog.
  /// `full_popularity` is the server's popularity table (one count per
  /// item); both are sliced and copied, so the shard is self-contained.
  ModelShard(int32_t id, ItemId begin, ItemId end,
             const Dataset& full_history,
             const std::vector<double>& full_popularity);

  int32_t id() const { return id_; }
  ItemId begin() const { return begin_; }
  ItemId end() const { return end_; }
  int32_t num_local_items() const { return end_ - begin_; }

  /// Builds this shard's ShardSlice of full-catalog `candidate` (version
  /// left 0 for the server to assign at swap time). When `verify_integrity`
  /// is set the sliced model must pass VerifyModelIntegrity (finite scan +
  /// wire-format/CRC round-trip); when `packed` is set a PackedSnapshot is
  /// built and, if `packed_agreement_users` > 0, verified against the slice
  /// within PackedScoreBound. When `ann` is non-null (requires `packed`) an
  /// IvfIndex is built over the sliced catalog and gated per ShardAnnOptions;
  /// `previous` (may be null) supplies the prior slice whose index seeds an
  /// incremental RebuildDirty, and `ann_items_reassigned` (may be null)
  /// receives the number of items the incremental path reassigned, or -1
  /// when a full build ran. Gate failures leave nothing published.
  Result<std::shared_ptr<ShardSlice>> BuildSlice(
      const FactorModel& candidate, bool packed, bool verify_integrity,
      int32_t packed_agreement_users, const std::string& context,
      const ShardAnnOptions* ann = nullptr,
      const ShardSlice* previous = nullptr,
      int64_t* ann_items_reassigned = nullptr) const;

  /// Scatter kernel: top-k of this shard's items for user `u`, through the
  /// IVF shortlist when `options.ann` is set and the slice carries an index,
  /// else the packed fast path when the slice carries a snapshot and
  /// `options.use_packed` allows it, else the exact double scan. Applies
  /// history and options.exclude exclusions; does NOT apply min_score or
  /// cold-start policy — those are gather-side (router) decisions so they
  /// act exactly once per query, as in the monolithic path. Returns at most
  /// min(k, shard size) items with GLOBAL ids, DeadlineExceeded when
  /// `deadline` expires mid-scan. `broadcast` (may be null) is the
  /// cross-shard early-reject bar.
  Result<std::vector<ScoredItem>> ScoreTopK(
      const ShardSlice& slice, UserId u, size_t k,
      const QueryOptions& options,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      ThresholdBroadcast* broadcast) const;

  /// Degraded scatter kernel: local popularity top-k with the same
  /// exclusion rules, for shards whose serving chain has no valid slice.
  /// Global ids, never fails.
  std::vector<ScoredItem> PopularityTopK(UserId u, size_t k,
                                         const QueryOptions& options) const;

 private:
  /// Fills the thread-local excluded bitmap (local ids) for `u`.
  std::vector<bool>* BuildExcluded(UserId u,
                                   const QueryOptions& options) const;

  int32_t id_;
  ItemId begin_;
  ItemId end_;
  Dataset history_;                 // sliced, local item ids
  std::vector<double> popularity_;  // sliced fallback scores
};

}  // namespace clapf

#endif  // CLAPF_SERVING_MODEL_SHARD_H_
