#ifndef CLAPF_SERVING_SERVING_STATS_H_
#define CLAPF_SERVING_SERVING_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clapf/obs/metrics.h"

namespace clapf {

/// Point-in-time copy of the serving counters, safe to read field-by-field.
struct ServingStatsSnapshot {
  // Per-query outcomes.
  int64_t queries = 0;            ///< every query that reached the server
  int64_t ok = 0;                 ///< answered within budget
  int64_t deadline_exceeded = 0;  ///< expired mid-scan (DeadlineExceeded)
  int64_t shed = 0;               ///< refused at admission (Unavailable)
  int64_t internal_errors = 0;    ///< served-model integrity failures
  int64_t client_errors = 0;      ///< bad request (unknown user id, ...)
  int64_t degraded = 0;           ///< answered by the popularity fallback
  // Model lifecycle.
  int64_t publishes = 0;          ///< candidates that cleared the canary gate
  int64_t canary_rejects = 0;     ///< candidates the gate refused
  int64_t rollbacks = 0;          ///< breaker-driven reverts to the previous snapshot
  int64_t breaker_trips = 0;      ///< circuit-breaker activations
  int64_t probes = 0;             ///< half-open probe windows opened
  int64_t probe_recoveries = 0;   ///< probes that reinstated the tripped snapshot
  int64_t probe_failures = 0;     ///< probes that reverted to the rollback target

  /// One-line counter dump for logs: "queries=12 ok=9 shed=2 ...".
  std::string ToString() const;
};

/// Thin view over the serving-outcome counters in a MetricsRegistry
/// (`serving.queries_total`, `serving.ok_total`, ...). The Record* methods
/// are relaxed sharded increments — observability, not synchronization — so
/// a snapshot taken mid-burst may be internally skewed by in-flight queries
/// but every count is eventually exact. Keeping this class (rather than
/// having callers hit the registry by name) preserves the stats() API and
/// gives serving outcomes a typo-proof, compile-checked vocabulary.
class ServingStats {
 public:
  /// `registry` must be non-null and outlive the stats object.
  explicit ServingStats(MetricsRegistry* registry);

  void RecordQuery() { queries_->Inc(); }
  void RecordOk() { ok_->Inc(); }
  void RecordDeadlineExceeded() { deadline_exceeded_->Inc(); }
  void RecordShed() { shed_->Inc(); }
  void RecordInternalError() { internal_errors_->Inc(); }
  void RecordClientError() { client_errors_->Inc(); }
  void RecordDegraded() { degraded_->Inc(); }
  void RecordPublish() { publishes_->Inc(); }
  void RecordCanaryReject() { canary_rejects_->Inc(); }
  void RecordRollback() { rollbacks_->Inc(); }
  void RecordBreakerTrip() { breaker_trips_->Inc(); }
  void RecordProbe() { probes_->Inc(); }
  void RecordProbeRecovery() { probe_recoveries_->Inc(); }
  void RecordProbeFailure() { probe_failures_->Inc(); }

  ServingStatsSnapshot Snapshot() const;

 private:
  Counter* queries_;
  Counter* ok_;
  Counter* deadline_exceeded_;
  Counter* shed_;
  Counter* internal_errors_;
  Counter* client_errors_;
  Counter* degraded_;
  Counter* publishes_;
  Counter* canary_rejects_;
  Counter* rollbacks_;
  Counter* breaker_trips_;
  Counter* probes_;
  Counter* probe_recoveries_;
  Counter* probe_failures_;
};

/// Point-in-time copy of one shard's serving counters.
struct ShardStatsSnapshot {
  int32_t shard = 0;
  int64_t queries = 0;            ///< queries that consulted this shard
  int64_t internal_errors = 0;    ///< integrity failures attributed here
  int64_t deadline_exceeded = 0;  ///< expiries attributed here
  int64_t degraded = 0;           ///< queries this shard answered by popularity
  int64_t publishes = 0;          ///< slices swapped into this shard
  int64_t canary_rejects = 0;     ///< slices the per-shard gate refused
  int64_t rollbacks = 0;          ///< breaker-driven reverts of this shard
  int64_t breaker_trips = 0;      ///< per-shard breaker activations
  int64_t probes = 0;             ///< half-open probe windows opened here
  int64_t probe_recoveries = 0;   ///< probes that reinstated this shard's slice
  int64_t probe_failures = 0;     ///< probes that reverted this shard's slice

  /// "shard=0 queries=12 internal_errors=0 ..." — one line, stable order.
  std::string ToString() const;
};

/// Server-wide counters plus the per-shard breakdown. The `shards` vector is
/// always in ascending shard-id order regardless of which thread, tenant, or
/// registry iteration produced the counts — two snapshots of the same quiet
/// server render byte-identically, which is what the drill goldens assert.
struct ShardedStatsSnapshot {
  ServingStatsSnapshot total;
  std::vector<ShardStatsSnapshot> shards;  // ascending shard id

  /// total.ToString() followed by one line per shard, '\n'-joined.
  std::string ToString() const;
};

/// Per-shard counter bundle in a shared registry, named
/// `serving.shard.<id>.*_total`. Same relaxed-increment semantics as
/// ServingStats.
class ShardServingStats {
 public:
  /// `registry` must be non-null and outlive the stats object.
  ShardServingStats(MetricsRegistry* registry, int32_t shard);

  void RecordQuery() { queries_->Inc(); }
  void RecordInternalError() { internal_errors_->Inc(); }
  void RecordDeadlineExceeded() { deadline_exceeded_->Inc(); }
  void RecordDegraded() { degraded_->Inc(); }
  void RecordPublish() { publishes_->Inc(); }
  void RecordCanaryReject() { canary_rejects_->Inc(); }
  void RecordRollback() { rollbacks_->Inc(); }
  void RecordBreakerTrip() { breaker_trips_->Inc(); }
  void RecordProbe() { probes_->Inc(); }
  void RecordProbeRecovery() { probe_recoveries_->Inc(); }
  void RecordProbeFailure() { probe_failures_->Inc(); }

  ShardStatsSnapshot Snapshot() const;

 private:
  int32_t shard_;
  Counter* queries_;
  Counter* internal_errors_;
  Counter* deadline_exceeded_;
  Counter* degraded_;
  Counter* publishes_;
  Counter* canary_rejects_;
  Counter* rollbacks_;
  Counter* breaker_trips_;
  Counter* probes_;
  Counter* probe_recoveries_;
  Counter* probe_failures_;
};

}  // namespace clapf

#endif  // CLAPF_SERVING_SERVING_STATS_H_
