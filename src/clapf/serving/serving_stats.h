#ifndef CLAPF_SERVING_SERVING_STATS_H_
#define CLAPF_SERVING_SERVING_STATS_H_

#include <cstdint>
#include <string>

#include "clapf/obs/metrics.h"

namespace clapf {

/// Point-in-time copy of the serving counters, safe to read field-by-field.
struct ServingStatsSnapshot {
  // Per-query outcomes.
  int64_t queries = 0;            ///< every query that reached the server
  int64_t ok = 0;                 ///< answered within budget
  int64_t deadline_exceeded = 0;  ///< expired mid-scan (DeadlineExceeded)
  int64_t shed = 0;               ///< refused at admission (Unavailable)
  int64_t internal_errors = 0;    ///< served-model integrity failures
  int64_t client_errors = 0;      ///< bad request (unknown user id, ...)
  int64_t degraded = 0;           ///< answered by the popularity fallback
  // Model lifecycle.
  int64_t publishes = 0;          ///< candidates that cleared the canary gate
  int64_t canary_rejects = 0;     ///< candidates the gate refused
  int64_t rollbacks = 0;          ///< breaker-driven reverts to the previous snapshot
  int64_t breaker_trips = 0;      ///< circuit-breaker activations
  int64_t probes = 0;             ///< half-open probe windows opened
  int64_t probe_recoveries = 0;   ///< probes that reinstated the tripped snapshot
  int64_t probe_failures = 0;     ///< probes that reverted to the rollback target

  /// One-line counter dump for logs: "queries=12 ok=9 shed=2 ...".
  std::string ToString() const;
};

/// Thin view over the serving-outcome counters in a MetricsRegistry
/// (`serving.queries_total`, `serving.ok_total`, ...). The Record* methods
/// are relaxed sharded increments — observability, not synchronization — so
/// a snapshot taken mid-burst may be internally skewed by in-flight queries
/// but every count is eventually exact. Keeping this class (rather than
/// having callers hit the registry by name) preserves the stats() API and
/// gives serving outcomes a typo-proof, compile-checked vocabulary.
class ServingStats {
 public:
  /// `registry` must be non-null and outlive the stats object.
  explicit ServingStats(MetricsRegistry* registry);

  void RecordQuery() { queries_->Inc(); }
  void RecordOk() { ok_->Inc(); }
  void RecordDeadlineExceeded() { deadline_exceeded_->Inc(); }
  void RecordShed() { shed_->Inc(); }
  void RecordInternalError() { internal_errors_->Inc(); }
  void RecordClientError() { client_errors_->Inc(); }
  void RecordDegraded() { degraded_->Inc(); }
  void RecordPublish() { publishes_->Inc(); }
  void RecordCanaryReject() { canary_rejects_->Inc(); }
  void RecordRollback() { rollbacks_->Inc(); }
  void RecordBreakerTrip() { breaker_trips_->Inc(); }
  void RecordProbe() { probes_->Inc(); }
  void RecordProbeRecovery() { probe_recoveries_->Inc(); }
  void RecordProbeFailure() { probe_failures_->Inc(); }

  ServingStatsSnapshot Snapshot() const;

 private:
  Counter* queries_;
  Counter* ok_;
  Counter* deadline_exceeded_;
  Counter* shed_;
  Counter* internal_errors_;
  Counter* client_errors_;
  Counter* degraded_;
  Counter* publishes_;
  Counter* canary_rejects_;
  Counter* rollbacks_;
  Counter* breaker_trips_;
  Counter* probes_;
  Counter* probe_recoveries_;
  Counter* probe_failures_;
};

}  // namespace clapf

#endif  // CLAPF_SERVING_SERVING_STATS_H_
