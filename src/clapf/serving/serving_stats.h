#ifndef CLAPF_SERVING_SERVING_STATS_H_
#define CLAPF_SERVING_SERVING_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace clapf {

/// Point-in-time copy of the serving counters, safe to read field-by-field.
struct ServingStatsSnapshot {
  // Per-query outcomes.
  int64_t queries = 0;            ///< every query that reached the server
  int64_t ok = 0;                 ///< answered within budget
  int64_t deadline_exceeded = 0;  ///< expired mid-scan (DeadlineExceeded)
  int64_t shed = 0;               ///< refused at admission (Unavailable)
  int64_t internal_errors = 0;    ///< served-model integrity failures
  int64_t client_errors = 0;      ///< bad request (unknown user id, ...)
  int64_t degraded = 0;           ///< answered by the popularity fallback
  // Model lifecycle.
  int64_t publishes = 0;          ///< candidates that cleared the canary gate
  int64_t canary_rejects = 0;     ///< candidates the gate refused
  int64_t rollbacks = 0;          ///< breaker-driven reverts to the previous snapshot
  int64_t breaker_trips = 0;      ///< circuit-breaker activations

  /// One-line counter dump for logs: "queries=12 ok=9 shed=2 ...".
  std::string ToString() const;
};

/// Lock-free per-outcome counters for the serving layer. All increments are
/// relaxed atomics: the counters are observability, not synchronization, so
/// a snapshot taken mid-burst may be internally skewed by in-flight queries
/// but every count is eventually exact.
class ServingStats {
 public:
  void RecordQuery() { Bump(&queries_); }
  void RecordOk() { Bump(&ok_); }
  void RecordDeadlineExceeded() { Bump(&deadline_exceeded_); }
  void RecordShed() { Bump(&shed_); }
  void RecordInternalError() { Bump(&internal_errors_); }
  void RecordClientError() { Bump(&client_errors_); }
  void RecordDegraded() { Bump(&degraded_); }
  void RecordPublish() { Bump(&publishes_); }
  void RecordCanaryReject() { Bump(&canary_rejects_); }
  void RecordRollback() { Bump(&rollbacks_); }
  void RecordBreakerTrip() { Bump(&breaker_trips_); }

  ServingStatsSnapshot Snapshot() const;

 private:
  static void Bump(std::atomic<int64_t>* counter) {
    counter->fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> ok_{0};
  std::atomic<int64_t> deadline_exceeded_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> internal_errors_{0};
  std::atomic<int64_t> client_errors_{0};
  std::atomic<int64_t> degraded_{0};
  std::atomic<int64_t> publishes_{0};
  std::atomic<int64_t> canary_rejects_{0};
  std::atomic<int64_t> rollbacks_{0};
  std::atomic<int64_t> breaker_trips_{0};
};

}  // namespace clapf

#endif  // CLAPF_SERVING_SERVING_STATS_H_
