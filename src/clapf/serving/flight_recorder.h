#ifndef CLAPF_SERVING_FLIGHT_RECORDER_H_
#define CLAPF_SERVING_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "clapf/util/status.h"

namespace clapf {

/// What one flight-recorder entry describes. The vocabulary covers every
/// degradation decision the serving layer can take, so a post-incident dump
/// reads as a causal narrative: pressure built (shed/deadline-miss/slow
/// entries), the governor reacted (governor-adjust), the breaker fired
/// (breaker-trip → rollback/degrade), and recovery ran (probe-*).
enum class FlightEventKind : uint8_t {
  kGovernorAdjust = 0,  ///< a governor moved one knob (a=old, b=new)
  kBreakerTrip,         ///< error-rate breaker fired (a=version, x=error rate)
  kRollback,            ///< breaker reverted to the previous snapshot (b=to)
  kDegrade,             ///< breaker fell back to popularity (no rollback target)
  kProbeStart,          ///< half-open probe began against snapshot a
  kProbeRecovered,      ///< probe passed; snapshot a reinstated (x=error rate)
  kProbeFailed,         ///< probe failed; reverted to snapshot b (x=error rate)
  kPublish,             ///< candidate cleared the canary gate (a=version)
  kCanaryReject,        ///< candidate refused pre-publish
  kShed,                ///< request refused at admission (a=queue depth)
  kDeadlineMiss,        ///< query expired mid-scan
  kSlowQuery,           ///< served above ServerOptions::slow_query_us (x=us)
  kInternalError,       ///< serve-time integrity failure (breaker food)
  kWalRecovery,         ///< online WAL replayed on startup (a=position, b=trained)
  kOnlinePublish,       ///< online snapshot cleared the gate (a=version, b=position)
  kAucRegressionRollback,  ///< online publish refused; trainer rolled back
  kNumFlightEventKinds,  // sentinel, keep last
};

/// Stable kebab-case name of an event kind ("governor-adjust", ...), used by
/// the JSON dump and test assertions.
const char* FlightEventKindName(FlightEventKind kind);

/// Bytes reserved for an event's free-text detail, terminator included.
/// Longer details are truncated: events must stay fixed-size PODs so the
/// ring's writers never allocate or lock.
inline constexpr size_t kFlightEventDetailBytes = 88;

/// One recorded event. Trivially copyable by design — the ring stores events
/// as raw words behind per-slot sequence counters.
struct FlightEvent {
  uint64_t seq = 0;       ///< global record index (monotonic, never reused)
  int64_t elapsed_us = 0; ///< microseconds since the recorder was created
  FlightEventKind kind = FlightEventKind::kGovernorAdjust;
  int64_t a = 0;          ///< kind-specific argument (see FlightEventKind)
  int64_t b = 0;          ///< kind-specific argument
  double x = 0.0;         ///< kind-specific measurement (rate, latency, ...)
  char detail[kFlightEventDetailBytes] = {};  ///< NUL-terminated free text
};

/// Rendering knobs for FlightRecorder dumps.
struct FlightDumpOptions {
  /// When false, every event's elapsed_us renders as 0 — the dump then
  /// depends only on the event sequence, which is what makes golden/replay
  /// tests deterministic. Incident dumps keep timestamps on.
  bool include_timestamps = true;
};

/// Fixed-size lock-free ring of recent serving incidents, dmesg-style: the
/// newest `capacity` events are retained, older ones are silently
/// overwritten, and a dump is cheap enough to take while the server is on
/// fire — which is exactly when it is taken.
///
/// Concurrency design: writers claim a monotonically increasing ticket with
/// one fetch_add and publish the event into slot `ticket % capacity` behind
/// a per-slot sequence counter (odd = write in progress, even = ticket*2+2 =
/// complete — a per-slot seqlock). Readers validate the slot sequence before
/// and after copying and skip any slot a concurrent writer is rewriting, so
/// Snapshot() never blocks a writer and never returns a torn event. All slot
/// accesses go through std::atomic (sequentially consistent on the sequence
/// word), so the drills run clean under ThreadSanitizer; events are rare
/// (decisions, not queries), so the ordering cost is irrelevant.
///
/// Thread-safe: any number of concurrent Record() and Snapshot()/Dump*()
/// calls.
class FlightRecorder {
 public:
  /// Ring of at least `capacity` events (rounded up to a power of two,
  /// minimum 8).
  explicit FlightRecorder(size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event, overwriting the oldest when full. Lock-free and
  /// allocation-free; `detail` is truncated to kFlightEventDetailBytes - 1.
  void Record(FlightEventKind kind, std::string_view detail, int64_t a = 0,
              int64_t b = 0, double x = 0.0);

  /// The retained events, oldest first. Slots mid-rewrite by a concurrent
  /// writer are skipped, so under churn the result may hold slightly fewer
  /// than capacity() events; each returned event is internally consistent.
  std::vector<FlightEvent> Snapshot() const;

  /// JSON rendering of Snapshot(), following the exporter conventions
  /// (deterministic key order, FormatMetricValue for doubles):
  ///   {"flight_recorder": {"capacity": N, "recorded": R, "dropped": D,
  ///    "events": [{"seq": ..., "elapsed_us": ..., "kind": "...",
  ///                "detail": "...", "a": ..., "b": ..., "x": ...}, ...]}}
  std::string DumpJson(const FlightDumpOptions& options = {}) const;

  /// Writes DumpJson() to `path` atomically (temp file + rename), so an
  /// incident dump read mid-write is never torn.
  Status DumpJsonFile(const std::string& path,
                      const FlightDumpOptions& options = {}) const;

  /// Lifetime totals: events ever recorded, and how many of those have been
  /// overwritten (recorded - retained).
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    const uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }
  size_t capacity() const { return capacity_; }

 private:
  // One event serialized into whole words so readers/writers move it through
  // std::atomic<uint64_t> — torn reads are detected by `seq`, races by TSan
  // never (every access is atomic).
  static constexpr size_t kPayloadWords =
      (sizeof(FlightEvent) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

  struct alignas(64) Slot {
    // 0 = never written; ticket*2 + 1 = write in progress; ticket*2 + 2 =
    // holds the completed event for `ticket`.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[kPayloadWords];
  };

  /// Copies the completed event for `ticket` out of its slot; false when the
  /// slot no longer (or not yet) holds that ticket.
  bool ReadSlot(uint64_t ticket, FlightEvent* out) const;

  size_t capacity_;  // power of two
  uint64_t mask_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<uint64_t> next_{0};  // next ticket to assign
  std::vector<Slot> slots_;
};

}  // namespace clapf

#endif  // CLAPF_SERVING_FLIGHT_RECORDER_H_
