#include "clapf/serving/sharded_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <latch>
#include <limits>
#include <numeric>
#include <utility>

#include "clapf/core/ranker.h"
#include "clapf/data/split.h"
#include "clapf/eval/sampled_evaluator.h"
#include "clapf/model/model_io.h"
#include "clapf/obs/trace_span.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"
#include "clapf/util/top_k.h"

namespace clapf {

namespace {

using Clock = std::chrono::steady_clock;

std::optional<Clock::time_point> DeadlineFrom(const QueryOptions& options) {
  if (options.deadline <= std::chrono::microseconds::zero()) {
    return std::nullopt;
  }
  return Clock::now() + options.deadline;
}

// Results are sorted best-to-worst, so the floor cuts a suffix (identical
// to the monolithic ranker's ApplyMinScore).
void ApplyMinScore(const std::optional<double>& floor,
                   std::vector<ScoredItem>* top) {
  if (!floor) return;
  auto first_below =
      std::find_if(top->begin(), top->end(),
                   [&](const ScoredItem& s) { return s.score < *floor; });
  top->erase(first_below, top->end());
}

}  // namespace

ShardedModelServer::ShardedModelServer(
    Dataset history, const ServerOptions& options,
    std::shared_ptr<const ShardRouter> router)
    : history_(std::move(history)),
      options_(options),
      shard_map_(ShardMap::Create(history_.num_items(), options.num_shards)),
      router_(router != nullptr
                  ? std::move(router)
                  : std::make_shared<const BroadcastRouter>()),
      query_latency_(metrics_.GetHistogram("serving.query.latency_us",
                                           LatencyBucketsUs())),
      batch_latency_(metrics_.GetHistogram("serving.batch.latency_us",
                                           LatencyBucketsUs())),
      recorder_(static_cast<size_t>(
          std::max<int64_t>(1, options.flight_recorder_capacity))),
      queue_(std::max(1, options.num_threads), options.max_queue_depth,
             &metrics_),
      stats_(&metrics_) {
  auto counts = history_.ItemPopularity();
  popularity_.assign(counts.begin(), counts.end());
  shards_.reserve(static_cast<size_t>(num_shards()));
  for (int32_t s = 0; s < num_shards(); ++s) {
    shards_.emplace_back(s, shard_map_.begin(s), shard_map_.end(s), history_,
                         popularity_);
    shard_recorders_.push_back(std::make_unique<FlightRecorder>(
        static_cast<size_t>(
            std::max<int64_t>(1, options.flight_recorder_capacity))));
    shard_stats_.push_back(
        std::make_unique<ShardServingStats>(&metrics_, s));
  }
  if (options_.canary.enabled && options_.canary.min_auc > 0.0) {
    TrainTestSplit split =
        SplitRandom(history_, 1.0 - options_.canary.probe_fraction,
                    options_.canary.seed);
    probe_train_ = std::move(split.train);
    probe_test_ = std::move(split.test);
  }
  if (num_shards() > 1) {
    const int threads = options_.scatter_threads > 0
                            ? options_.scatter_threads
                            : std::min(num_shards(), 4);
    scatter_pool_ = std::make_unique<ThreadPool>(threads);
  }
  governor_ = std::make_unique<ServingGovernor>(
      options_.governor, options_.max_queue_depth, &metrics_, &queue_,
      &recorder_);
  governor_->Start();
}

ShardedModelServer::~ShardedModelServer() {
  governor_->Stop();
  queue_.Wait();
}

void ShardedModelServer::RecordShardEvent(int32_t shard,
                                          FlightEventKind kind,
                                          const std::string& detail,
                                          int64_t a, int64_t b, double x) {
  recorder_.Record(kind, detail, a, b, x);
  shard_recorders_[static_cast<size_t>(shard)]->Record(kind, detail, a, b, x);
}

Result<FactorModel> ShardedModelServer::ResolveCandidate(
    PublishRequest* request) {
  if (request->model.has_value() && !request->path.empty()) {
    return Status::InvalidArgument(
        "publish request carries both an in-memory model and a file path");
  }
  if (request->model.has_value()) return *std::move(request->model);
  if (request->path.empty()) {
    return Status::InvalidArgument(
        "publish request carries neither a model nor a file path");
  }
  auto model = LoadModel(request->path);  // CRC-verified by the wire format
  if (!model.ok()) {
    stats_.RecordCanaryReject();
    recorder_.Record(FlightEventKind::kCanaryReject,
                     model.status().message());
    CLAPF_LOG(Warning) << "candidate file rejected, prior slices keep "
                          "serving: "
                       << model.status().ToString();
  }
  return model;
}

Status ShardedModelServer::PublishModel(PublishRequest request) {
  const int32_t target = request.shard;
  const std::string tenant = request.tenant;
  if (tenant.empty()) {
    return Status::InvalidArgument("publish tenant must be non-empty");
  }
  if (target != kAllShards && (target < 0 || target >= num_shards())) {
    return Status::InvalidArgument(
        "publish targets shard " + std::to_string(target) +
        " outside [0, " + std::to_string(num_shards()) + ")");
  }
  auto resolved = ResolveCandidate(&request);
  if (!resolved.ok()) return resolved.status();
  FactorModel candidate = *std::move(resolved);

  FaultInjector& faults = FaultInjector::Instance();
  if (faults.armed() &&
      faults.ShouldFire(FaultPoint::kServeCorruptCandidate) &&
      !candidate.mutable_user_factor_data().empty()) {
    candidate.mutable_user_factor_data()[0] =
        std::numeric_limits<double>::quiet_NaN();
  }

  const std::string context = "serving candidate";
  if (candidate.num_users() != history_.num_users() ||
      candidate.num_items() != history_.num_items()) {
    // A shard publish still ships a FULL-catalog candidate; the server does
    // the slicing. Anything else is a routing bug worth failing loudly.
    Status bad = Status::InvalidArgument(
        context + " dimensions (" + std::to_string(candidate.num_users()) +
        "x" + std::to_string(candidate.num_items()) +
        ") disagree with serving history (" +
        std::to_string(history_.num_users()) + "x" +
        std::to_string(history_.num_items()) + ")");
    stats_.RecordCanaryReject();
    recorder_.Record(FlightEventKind::kCanaryReject, bad.message());
    return bad;
  }

  std::vector<int32_t> targets;
  if (target == kAllShards) {
    targets.resize(static_cast<size_t>(num_shards()));
    std::iota(targets.begin(), targets.end(), 0);
  } else {
    targets.push_back(target);
  }

  const bool canary = options_.canary.enabled;
  if (canary && target == kAllShards) {
    // Full-catalog gate, once: integrity scan + (optional) sampled-AUC
    // probe on the exact model. The packed kernels are vetted per shard
    // below via the agreement check, so what serves is still what was
    // vetted.
    Status whole = VerifyModelIntegrity(candidate, context);
    if (whole.ok() && options_.canary.min_auc > 0.0 &&
        probe_test_.num_interactions() > 0) {
      SampledEvaluator eval(&probe_train_, &probe_test_,
                            options_.canary.probe_negatives,
                            options_.canary.seed);
      FactorModelRanker ranker(&candidate);
      const double auc = eval.Evaluate(ranker, {5}).auc;
      if (auc < options_.canary.min_auc) {
        whole = Status::FailedPrecondition(
            context + " failed canary: sampled AUC " + std::to_string(auc) +
            " below floor " + std::to_string(options_.canary.min_auc));
      }
    }
    if (!whole.ok()) {
      stats_.RecordCanaryReject();
      recorder_.Record(FlightEventKind::kCanaryReject, whole.message());
      CLAPF_LOG(Warning) << "canary gate rejected candidate, prior slices "
                            "keep serving: "
                         << whole.ToString();
      return whole;
    }
  }

  // Build (and gate) every target slice BEFORE swapping any: an all-shard
  // publish is all-or-nothing, and a failed one-shard publish leaves that
  // shard's prior slice serving.
  const bool ann_enabled = options_.packed && options_.ann;
  ShardAnnOptions ann;
  std::vector<std::shared_ptr<const ShardSlice>> prev_slices(targets.size());
  if (ann_enabled) {
    ann.ivf = options_.ivf;
    ann.canary = canary;
    ann.recall_floor = options_.canary.ann_recall_floor;
    ann.recall_users = options_.canary.ann_recall_users;
    ann.recall_k = options_.canary.ann_recall_k;
    // A compatible prior index per shard seeds the incremental rebuild;
    // read the current chain cut once so every target shard's previous
    // slice comes from the same publish generation.
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end() && !it->second.chains.empty()) {
      for (size_t i = 0; i < targets.size(); ++i) {
        prev_slices[i] =
            it->second.chains[static_cast<size_t>(targets[i])].current;
      }
    }
  }
  std::vector<std::shared_ptr<ShardSlice>> built(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    const int32_t s = targets[i];
    int64_t ann_reassigned = -1;
    auto slice = shards_[static_cast<size_t>(s)].BuildSlice(
        candidate, options_.packed,
        /*verify_integrity=*/canary && target != kAllShards,
        canary ? options_.canary.packed_agreement_users : 0,
        context + " (shard " + std::to_string(s) + ")",
        ann_enabled ? &ann : nullptr, prev_slices[i].get(),
        &ann_reassigned);
    if (ann_enabled) {
      // Every ivf gate message carries the "ivf" tag, which distinguishes
      // "the index was built but refused" from "the slice failed before the
      // ANN stage ran" (integrity/agreement) where no index counters apply.
      const bool ivf_failure =
          !slice.ok() &&
          slice.status().message().find("ivf") != std::string::npos;
      if (slice.ok() || ivf_failure) {
        if (ann_reassigned >= 0) {
          metrics_.GetCounter("ann.index_rebuilds_incremental_total")->Inc();
          metrics_.GetCounter("ann.index_items_reassigned_total")
              ->Inc(ann_reassigned);
        } else {
          metrics_.GetCounter("ann.index_builds_total")->Inc();
        }
        if (canary) {
          metrics_
              .GetCounter(slice.ok() ? "ann.recall_gate_pass_total"
                                     : "ann.recall_gate_fail_total")
              ->Inc();
        }
      }
    }
    if (!slice.ok()) {
      stats_.RecordCanaryReject();
      shard_stats_[static_cast<size_t>(s)]->RecordCanaryReject();
      RecordShardEvent(s, FlightEventKind::kCanaryReject,
                       slice.status().message(), 0, s);
      CLAPF_LOG(Warning) << "shard " << s
                         << " canary gate rejected candidate, prior slice "
                            "keeps serving: "
                         << slice.status().ToString();
      return slice.status();
    }
    built[i] = *std::move(slice);
  }

  int64_t published_version = 0;
  {
    // One mutex hold swaps every target: readers cut either the old model
    // or the new one, never a mix of the two from one publish.
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    published_version = next_version_++;
    TenantState& state = tenants_[tenant];
    if (state.chains.empty()) {
      state.chains.resize(static_cast<size_t>(num_shards()));
    }
    for (size_t i = 0; i < targets.size(); ++i) {
      built[i]->version = published_version;
      ShardChain& chain = state.chains[static_cast<size_t>(targets[i])];
      chain.previous = chain.current;
      chain.current = std::move(built[i]);
      // A fresh slice supersedes any pending half-open probe of this shard:
      // the stashed slice is obsolete and its verdict would be moot.
      chain.tripped.reset();
      chain.probe_fallback.reset();
    }
  }
  stats_.RecordPublish();
  for (int32_t s : targets) {
    shard_stats_[static_cast<size_t>(s)]->RecordPublish();
    RecordShardEvent(s, FlightEventKind::kPublish,
                     "tenant \"" + tenant +
                         "\" slice cleared the canary gate",
                     published_version, s);
  }
  {
    // The swapped shards get fresh breaker windows: errors charged to their
    // old slices must not trip the breaker on the new ones. Untouched
    // shards keep their windows — their slices did not change.
    std::lock_guard<std::mutex> lock(breaker_mu_);
    for (int32_t s : targets) {
      breaker_windows_[{tenant, s}] = BreakerWindow{};
    }
  }
  return Status::OK();
}

std::vector<std::shared_ptr<const ShardSlice>>
ShardedModelServer::AcquireCut(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.chains.empty()) return {};
  std::vector<std::shared_ptr<const ShardSlice>> cut(
      it->second.chains.size());
  for (size_t s = 0; s < cut.size(); ++s) {
    cut[s] = it->second.chains[s].current;
  }
  return cut;
}

Result<std::vector<ScoredItem>> ShardedModelServer::ServeDegraded(
    UserId u, size_t k, const QueryOptions& options) const {
  if (u < 0 || u >= history_.num_users()) {
    return Status::OutOfRange("unknown user id " + std::to_string(u));
  }
  k = ClampK(k, history_.num_items());
  if (k == 0) return std::vector<ScoredItem>{};
  std::vector<bool> excluded(static_cast<size_t>(history_.num_items()),
                             false);
  for (ItemId i : history_.ItemsOf(u)) {
    excluded[static_cast<size_t>(i)] = true;
  }
  for (ItemId i : options.exclude) {
    if (i >= 0 && i < history_.num_items()) {
      excluded[static_cast<size_t>(i)] = true;
    }
  }
  std::vector<ScoredItem> top = SelectTopK(popularity_, excluded, k);
  ApplyMinScore(options.min_score, &top);
  return top;
}

Result<std::vector<ScoredItem>> ShardedModelServer::ServeUser(
    UserId u, size_t k, const QueryOptions& options,
    const std::optional<Clock::time_point>& deadline,
    const std::vector<std::shared_ptr<const ShardSlice>>& cut,
    QueryAttribution* attr) {
  k = ClampK(k, history_.num_items());
  if (k == 0) return std::vector<ScoredItem>{};

  std::vector<ScoredItem> top;
  const bool cold = history_.NumItemsOf(u) == 0;
  if (cold) {
    // Cold-start is a GLOBAL decision made here at the gather side: per-
    // shard history slices would make a globally-warm user look cold in
    // every shard where they happen to own no interactions, and a sharded
    // server must answer exactly like a monolithic one.
    if (!options.cold_start_fallback) return std::vector<ScoredItem>{};
    std::vector<bool> excluded(static_cast<size_t>(history_.num_items()),
                               false);
    for (ItemId i : options.exclude) {
      if (i >= 0 && i < history_.num_items()) {
        excluded[static_cast<size_t>(i)] = true;
      }
    }
    top = SelectTopK(popularity_, excluded, k);
    ApplyMinScore(options.min_score, &top);
  } else {
    std::vector<int32_t> routed;
    router_->Route(u, shard_map_, &routed);
    // Sanitize the router's answer: in-range, ascending, unique; an empty
    // route falls back to broadcast (the exact policy).
    routed.erase(std::remove_if(routed.begin(), routed.end(),
                                [this](int32_t s) {
                                  return s < 0 || s >= num_shards();
                                }),
                 routed.end());
    std::sort(routed.begin(), routed.end());
    routed.erase(std::unique(routed.begin(), routed.end()), routed.end());
    if (routed.empty()) {
      routed.resize(static_cast<size_t>(num_shards()));
      std::iota(routed.begin(), routed.end(), 0);
    }
    attr->consulted = routed;

    const size_t n = routed.size();
    std::vector<std::vector<ScoredItem>> lists(n);
    std::vector<Status> statuses(n, Status::OK());
    ThresholdBroadcast broadcast;

    auto score_one = [&](size_t i) {
      const int32_t s = routed[i];
      const ShardSlice* slice = cut[static_cast<size_t>(s)].get();
      if (slice == nullptr) {
        // This shard's chain has no valid slice (breaker degraded it or it
        // was never published): it answers from its popularity slice while
        // the healthy shards keep serving the model — availability per
        // failure domain instead of a server-wide fallback.
        shard_stats_[static_cast<size_t>(s)]->RecordDegraded();
        lists[i] = shards_[static_cast<size_t>(s)].PopularityTopK(u, k,
                                                                  options);
        return;
      }
      auto got = shards_[static_cast<size_t>(s)].ScoreTopK(
          *slice, u, k, options, deadline, &broadcast);
      if (got.ok()) {
        lists[i] = *std::move(got);
      } else {
        statuses[i] = got.status();
      }
    };

    if (n == 1 || scatter_pool_ == nullptr) {
      for (size_t i = 0; i < n; ++i) score_one(i);
    } else {
      // Scatter over the dedicated pool and wait on a latch. The scatter
      // tasks never block on anything, so the admitted worker parked here
      // cannot deadlock against the admission pool.
      std::latch done(static_cast<std::ptrdiff_t>(n));
      for (size_t i = 0; i < n; ++i) {
        scatter_pool_->Submit([&score_one, &done, i] {
          score_one(i);
          done.count_down();
        });
      }
      done.wait();
    }

    for (size_t i = 0; i < n; ++i) {
      if (!statuses[i].ok()) {
        attr->blame = routed[i];
        return statuses[i];
      }
    }

    // Gather: every per-shard heap feeds one global accumulator. Its total
    // order (score desc, item id asc) is insertion-order independent, so
    // the merge is deterministic and bit-identical to a monolithic scan.
    TopKAccumulator acc(k);
    for (const std::vector<ScoredItem>& list : lists) {
      for (const ScoredItem& item : list) acc.Push(item.item, item.score);
    }
    top = acc.Take();
    ApplyMinScore(options.min_score, &top);
  }

  FaultInjector& faults = FaultInjector::Instance();
  if (faults.armed() && !top.empty() &&
      faults.ShouldFire(FaultPoint::kServeScoreNan)) {
    top[0].score = std::numeric_limits<double>::quiet_NaN();
  }
  // Serve-time integrity, attributed to the failure domain: a non-finite
  // score is charged to the shard that owns the item, and only that
  // (tenant, shard) breaker window eats the error.
  for (const ScoredItem& item : top) {
    if (!std::isfinite(item.score)) {
      const int32_t s = shard_map_.ShardOfItem(item.item);
      attr->blame = s;
      if (attr->consulted.empty()) attr->consulted.push_back(s);
      const ShardSlice* slice = cut[static_cast<size_t>(s)].get();
      return Status::Internal(
          "non-finite score served for user " + std::to_string(u) +
          " by shard " + std::to_string(s) + " slice v" +
          std::to_string(slice != nullptr ? slice->version : 0));
    }
  }
  return top;
}

Result<std::vector<ScoredItem>> ShardedModelServer::ServeOne(
    UserId u, size_t k, const QueryOptions& options,
    const std::string& tenant, QueryAttribution* attr) {
  if (u < 0 || u >= history_.num_users()) {
    return Status::OutOfRange("unknown user id " + std::to_string(u));
  }
  auto cut = AcquireCut(tenant);
  const bool any_live =
      std::any_of(cut.begin(), cut.end(),
                  [](const std::shared_ptr<const ShardSlice>& s) {
                    return s != nullptr;
                  });
  if (!any_live) {
    // Never-published (or unknown) tenant, or every shard tripped dark:
    // the whole answer comes from popularity, exactly like the monolithic
    // degraded path.
    stats_.RecordDegraded();
    return ServeDegraded(u, k, options);
  }
  return ServeUser(u, k, options, DeadlineFrom(options), cut, attr);
}

Result<BatchReply> ShardedModelServer::ServeBatch(
    std::span<const UserId> users, size_t k, const QueryOptions& options,
    const std::string& tenant, QueryAttribution* attr) {
  for (UserId u : users) {
    if (u < 0 || u >= history_.num_users()) {
      return Status::OutOfRange("unknown user id " + std::to_string(u));
    }
  }
  BatchReply reply;
  reply.results.resize(users.size());
  reply.complete.assign(users.size(), 0);
  if (users.empty()) return reply;

  auto cut = AcquireCut(tenant);
  const bool any_live =
      std::any_of(cut.begin(), cut.end(),
                  [](const std::shared_ptr<const ShardSlice>& s) {
                    return s != nullptr;
                  });
  if (!any_live) {
    for (size_t i = 0; i < users.size(); ++i) {
      stats_.RecordDegraded();
      auto one = ServeDegraded(users[i], k, options);
      if (!one.ok()) return one.status();
      reply.results[i] = *std::move(one);
      reply.complete[i] = 1;
    }
    reply.num_complete = users.size();
    return reply;
  }

  // One absolute deadline for the whole batch; users run serially on this
  // worker (parallelism is across requests and across shards within one
  // user), and an expiry hands back the completed prefix.
  const std::optional<Clock::time_point> deadline = DeadlineFrom(options);
  for (size_t i = 0; i < users.size(); ++i) {
    auto one = ServeUser(users[i], k, options, deadline, cut, attr);
    if (!one.ok()) {
      if (one.status().code() == StatusCode::kDeadlineExceeded) break;
      return one.status();  // integrity failures fail the whole batch
    }
    reply.results[i] = *std::move(one);
    reply.complete[i] = 1;
  }
  for (uint8_t c : reply.complete) reply.num_complete += c;
  reply.deadline_exceeded = reply.num_complete < users.size();
  return reply;
}

Result<std::vector<ScoredItem>> ShardedModelServer::RecommendOne(
    UserId u, size_t k, const QueryOptions& options,
    const std::string& tenant) {
  stats_.RecordQuery();
  QueryOptions effective = options;
  governor_->ApplyToQuery(&effective);
  TraceSpan span(query_latency_);
  std::promise<Result<std::vector<ScoredItem>>> promise;
  auto future = promise.get_future();
  QueryAttribution attr;
  auto task = [this, u, k, &effective, &tenant, &promise, &attr] {
    promise.set_value(ServeOne(u, k, effective, tenant, &attr));
  };
  Status admitted =
      options_.per_tenant_quota > 0
          ? queue_.SubmitForTenant(tenant, options_.per_tenant_quota, task)
          : queue_.Submit(task);
  if (!admitted.ok()) {
    span.Cancel();
    stats_.RecordShed();
    recorder_.Record(FlightEventKind::kShed, "query shed at admission",
                     queue_.depth(), queue_.max_depth());
    return admitted;
  }
  auto out = future.get();
  span.Stop();
  const double elapsed_us = span.ElapsedMicros();
  if (options_.slow_query_us > 0 &&
      elapsed_us >= static_cast<double>(options_.slow_query_us)) {
    recorder_.Record(FlightEventKind::kSlowQuery,
                     "query served above slow threshold", u, 0, elapsed_us);
  }
  RecordOutcome(out.status(), tenant, attr);
  return out;
}

Result<BatchReply> ShardedModelServer::RecommendBatch(
    std::span<const UserId> users, size_t k, const QueryOptions& options,
    const std::string& tenant) {
  stats_.RecordQuery();
  QueryOptions effective = options;
  governor_->ApplyToQuery(&effective);
  TraceSpan span(batch_latency_);
  std::promise<Result<BatchReply>> promise;
  auto future = promise.get_future();
  QueryAttribution attr;
  auto task = [this, users, k, &effective, &tenant, &promise, &attr] {
    promise.set_value(ServeBatch(users, k, effective, tenant, &attr));
  };
  Status admitted =
      options_.per_tenant_quota > 0
          ? queue_.SubmitForTenant(tenant, options_.per_tenant_quota, task)
          : queue_.Submit(task);
  if (!admitted.ok()) {
    span.Cancel();
    stats_.RecordShed();
    recorder_.Record(FlightEventKind::kShed, "batch shed at admission",
                     queue_.depth(), queue_.max_depth());
    return admitted;
  }
  auto out = future.get();
  span.Stop();
  const double elapsed_us = span.ElapsedMicros();
  if (options_.slow_query_us > 0 &&
      elapsed_us >= static_cast<double>(options_.slow_query_us)) {
    recorder_.Record(FlightEventKind::kSlowQuery,
                     "batch served above slow threshold",
                     static_cast<int64_t>(users.size()), 0, elapsed_us);
  }
  if (out.ok() && out->deadline_exceeded) {
    RecordOutcome(Status::DeadlineExceeded("partial batch"), tenant, attr);
  } else {
    RecordOutcome(out.status(), tenant, attr);
  }
  return out;
}

void ShardedModelServer::RecordOutcome(const Status& status,
                                       const std::string& tenant,
                                       const QueryAttribution& attr) {
  bool breaker_error = false;
  switch (status.code()) {
    case StatusCode::kOk:
      stats_.RecordOk();
      break;
    case StatusCode::kDeadlineExceeded:
      stats_.RecordDeadlineExceeded();
      recorder_.Record(FlightEventKind::kDeadlineMiss, status.message());
      if (attr.blame >= 0) {
        shard_stats_[static_cast<size_t>(attr.blame)]
            ->RecordDeadlineExceeded();
        shard_recorders_[static_cast<size_t>(attr.blame)]->Record(
            FlightEventKind::kDeadlineMiss, status.message());
      }
      break;
    case StatusCode::kOutOfRange:
    case StatusCode::kInvalidArgument:
      stats_.RecordClientError();
      break;
    default:
      stats_.RecordInternalError();
      recorder_.Record(FlightEventKind::kInternalError, status.message());
      if (attr.blame >= 0) {
        shard_stats_[static_cast<size_t>(attr.blame)]->RecordInternalError();
        shard_recorders_[static_cast<size_t>(attr.blame)]->Record(
            FlightEventKind::kInternalError, status.message());
      }
      breaker_error = true;
      break;
  }
  for (int32_t s : attr.consulted) {
    shard_stats_[static_cast<size_t>(s)]->RecordQuery();
  }
  if (!options_.breaker.enabled) return;

  // Outcomes that exercised the served slices and can judge their health —
  // what a shard's half-open probe window counts. Deadline misses and
  // client errors say nothing about the slice under probe.
  const bool judges_model = status.code() == StatusCode::kOk || breaker_error;

  // Each consulted shard's (tenant, shard) window counts this query; only
  // the blamed shard's window eats the error. Every state transition is
  // decided under breaker_mu_ and acted on after releasing it — the
  // actions take snapshot_mu_, and the two locks are never held together.
  std::vector<int32_t> judged = attr.consulted;
  if (attr.blame >= 0 &&
      std::find(judged.begin(), judged.end(), attr.blame) == judged.end()) {
    judged.push_back(attr.blame);
  }
  if (judged.empty()) return;
  struct ShardAction {
    enum class Kind { kTrip, kBeginProbe, kResolveProbe };
    int32_t shard;
    Kind kind;
    bool recovered = false;
    double rate = 0.0;
  };
  std::vector<ShardAction> actions;
  {
    std::lock_guard<std::mutex> lock(breaker_mu_);
    for (int32_t s : judged) {
      BreakerWindow& w = breaker_windows_[{tenant, s}];
      const bool shard_error = breaker_error && s == attr.blame;
      if (w.state == ShardBreakerState::kHalfOpen) {
        // The probe window judges this shard's re-admitted slice alone;
        // its tumbling window is suspended so the verdict cannot
        // double-trip.
        if (!judges_model) continue;
        if (shard_error) ++w.probe_errors;
        if (--w.probe_left <= 0) {
          const double rate =
              static_cast<double>(w.probe_errors) /
              static_cast<double>(
                  std::max<int64_t>(1, options_.breaker.probe_window));
          actions.push_back(
              {s, ShardAction::Kind::kResolveProbe,
               rate < options_.breaker.error_threshold, rate});
          w.state = ShardBreakerState::kClosed;
          w.queries = 0;
          w.errors = 0;
        }
        continue;
      }
      ++w.queries;
      if (shard_error) ++w.errors;
      bool tripped = false;
      if (w.queries >= options_.breaker.min_samples) {
        const double rate = static_cast<double>(w.errors) /
                            static_cast<double>(w.queries);
        if (rate >= options_.breaker.error_threshold) {
          actions.push_back({s, ShardAction::Kind::kTrip});
          w = BreakerWindow{};
          tripped = true;
        } else if (w.queries >= options_.breaker.window) {
          // Only the tumbling counters reset; a cooldown in flight keeps
          // ticking toward its probe.
          w.queries = 0;
          w.errors = 0;
        }
      }
      if (!tripped && w.state == ShardBreakerState::kCooldown) {
        if (--w.cooldown_left <= 0) {
          actions.push_back({s, ShardAction::Kind::kBeginProbe});
          w.state = ShardBreakerState::kHalfOpen;
          w.probe_left = std::max<int64_t>(1, options_.breaker.probe_window);
          w.probe_errors = 0;
        }
      }
    }
  }
  for (const ShardAction& action : actions) {
    switch (action.kind) {
      case ShardAction::Kind::kTrip:
        TripShardBreaker(tenant, action.shard);
        break;
      case ShardAction::Kind::kBeginProbe:
        BeginShardProbe(tenant, action.shard);
        break;
      case ShardAction::Kind::kResolveProbe:
        ResolveShardProbe(tenant, action.shard, action.recovered,
                          action.rate);
        break;
    }
  }
}

bool ShardedModelServer::TripShardBreaker(const std::string& tenant,
                                          int32_t shard) {
  bool have_probe_candidate = false;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end() || it->second.chains.empty()) return false;
    stats_.RecordBreakerTrip();
    shard_stats_[static_cast<size_t>(shard)]->RecordBreakerTrip();
    ShardChain& chain = it->second.chains[static_cast<size_t>(shard)];
    const int64_t from_version =
        chain.current != nullptr ? chain.current->version : 0;
    RecordShardEvent(shard, FlightEventKind::kBreakerTrip,
                     "error-rate breaker fired on tenant \"" + tenant +
                         "\" shard " + std::to_string(shard),
                     from_version, shard);
    // Stash the failing slice for a later half-open probe; a newer trip
    // replaces any older, never-probed candidate.
    if (options_.breaker.half_open && chain.current != nullptr) {
      chain.tripped = chain.current;
      have_probe_candidate = true;
    } else {
      chain.tripped.reset();
    }
    chain.probe_fallback.reset();
    if (chain.previous != nullptr) {
      CLAPF_LOG(Warning) << "circuit breaker tripped on tenant \"" << tenant
                         << "\" shard " << shard << " slice v"
                         << from_version << ": rolling back to v"
                         << chain.previous->version;
      RecordShardEvent(shard, FlightEventKind::kRollback,
                       "shard rolled back to previous slice", from_version,
                       chain.previous->version);
      chain.current = chain.previous;
      chain.previous.reset();
      stats_.RecordRollback();
      shard_stats_[static_cast<size_t>(shard)]->RecordRollback();
    } else {
      CLAPF_LOG(Warning) << "circuit breaker tripped on tenant \"" << tenant
                         << "\" shard " << shard
                         << " with no rollback target: shard degrades to "
                            "popularity fallback";
      RecordShardEvent(shard, FlightEventKind::kDegrade,
                       "no rollback target; shard degraded to popularity "
                       "fallback",
                       from_version, shard);
      chain.current.reset();
    }
  }
  {
    // Arm the half-open schedule for this shard's window. RecordOutcome
    // already zeroed the tumbling counters when it decided the trip; this
    // re-zeroing only covers direct TripShardBreaker callers.
    std::lock_guard<std::mutex> lock(breaker_mu_);
    BreakerWindow& w = breaker_windows_[{tenant, shard}];
    if (have_probe_candidate && options_.breaker.cooldown_queries > 0) {
      w.state = ShardBreakerState::kCooldown;
      w.cooldown_left = options_.breaker.cooldown_queries;
    } else {
      w.state = ShardBreakerState::kClosed;
    }
    w.probe_left = 0;
    w.probe_errors = 0;
    w.queries = 0;
    w.errors = 0;
  }
  if (!options_.flight_dump_path.empty()) {
    Status dumped = recorder_.DumpJsonFile(options_.flight_dump_path);
    if (!dumped.ok()) {
      CLAPF_LOG(Warning) << "flight-recorder dump to "
                         << options_.flight_dump_path
                         << " failed: " << dumped.ToString();
    }
  }
  return have_probe_candidate;
}

bool ShardedModelServer::BeginShardProbe(const std::string& tenant,
                                         int32_t shard) {
  bool started = false;
  int64_t probe_version = 0;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end() && !it->second.chains.empty()) {
      ShardChain& chain = it->second.chains[static_cast<size_t>(shard)];
      if (chain.tripped != nullptr) {
        chain.probe_fallback = chain.current;
        probe_version = chain.tripped->version;
        chain.current = chain.tripped;
        started = true;
      }
    }
  }
  if (!started) {
    // A publish raced the probe open and superseded the stashed slice;
    // nothing to probe.
    std::lock_guard<std::mutex> lock(breaker_mu_);
    BreakerWindow& w = breaker_windows_[{tenant, shard}];
    w.state = ShardBreakerState::kClosed;
    w.probe_left = 0;
    w.probe_errors = 0;
    return false;
  }
  stats_.RecordProbe();
  shard_stats_[static_cast<size_t>(shard)]->RecordProbe();
  RecordShardEvent(shard, FlightEventKind::kProbeStart,
                   "half-open probe re-admitted tripped slice on tenant \"" +
                       tenant + "\" shard " + std::to_string(shard),
                   probe_version, shard);
  CLAPF_LOG(Info) << "half-open probe: re-admitting tripped slice v"
                  << probe_version << " on tenant \"" << tenant << "\" shard "
                  << shard << " for " << options_.breaker.probe_window
                  << " queries";
  return true;
}

void ShardedModelServer::ResolveShardProbe(const std::string& tenant,
                                           int32_t shard, bool recovered,
                                           double error_rate) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.chains.empty()) return;
  ShardChain& chain = it->second.chains[static_cast<size_t>(shard)];
  if (chain.tripped == nullptr || chain.current != chain.tripped) {
    // A publish replaced the probe slice mid-window; its verdict is moot.
    chain.tripped.reset();
    chain.probe_fallback.reset();
    return;
  }
  const int64_t probe_version = chain.current->version;
  if (recovered) {
    // The probed slice stays serving and the fallback it displaced becomes
    // the rollback target again — the pre-incident chain restored, for
    // this shard alone.
    chain.previous = chain.probe_fallback;
    stats_.RecordProbeRecovery();
    shard_stats_[static_cast<size_t>(shard)]->RecordProbeRecovery();
    RecordShardEvent(shard, FlightEventKind::kProbeRecovered,
                     "probe passed; shard slice reinstated", probe_version,
                     chain.previous != nullptr ? chain.previous->version : 0,
                     error_rate);
    CLAPF_LOG(Info) << "half-open probe passed: slice v" << probe_version
                    << " reinstated on tenant \"" << tenant << "\" shard "
                    << shard << " (error rate " << error_rate << ")";
  } else {
    chain.current = chain.probe_fallback;
    stats_.RecordProbeFailure();
    shard_stats_[static_cast<size_t>(shard)]->RecordProbeFailure();
    RecordShardEvent(shard, FlightEventKind::kProbeFailed,
                     "probe failed; shard reverted to fallback",
                     probe_version,
                     chain.current != nullptr ? chain.current->version : 0,
                     error_rate);
    CLAPF_LOG(Warning) << "half-open probe failed: slice v" << probe_version
                       << " discarded on tenant \"" << tenant << "\" shard "
                       << shard << " (error rate " << error_rate << ")";
  }
  chain.tripped.reset();
  chain.probe_fallback.reset();
}

std::vector<std::string> ShardedModelServer::tenants() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::vector<int64_t> ShardedModelServer::shard_versions(
    const std::string& tenant) const {
  std::vector<int64_t> versions(static_cast<size_t>(num_shards()), 0);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return versions;
  for (size_t s = 0; s < it->second.chains.size(); ++s) {
    const auto& current = it->second.chains[s].current;
    versions[s] = current != nullptr ? current->version : 0;
  }
  return versions;
}

bool ShardedModelServer::degraded(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.chains.empty()) return true;
  for (const ShardChain& chain : it->second.chains) {
    if (chain.current == nullptr) return true;
  }
  return false;
}

ShardedStatsSnapshot ShardedModelServer::stats() const {
  ShardedStatsSnapshot snapshot;
  snapshot.total = stats_.Snapshot();
  snapshot.shards.reserve(shard_stats_.size());
  // Ascending shard id by construction — NOT registry iteration order —
  // so two snapshots of the same counters always render identically.
  for (const auto& stats : shard_stats_) {
    snapshot.shards.push_back(stats->Snapshot());
  }
  return snapshot;
}

Status ShardedModelServer::DumpFlightRecorder(
    const std::string& path, const FlightDumpOptions& options) const {
  return recorder_.DumpJsonFile(path, options);
}

}  // namespace clapf
