#ifndef CLAPF_SERVING_GOVERNOR_H_
#define CLAPF_SERVING_GOVERNOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "clapf/obs/metrics.h"
#include "clapf/recommender.h"
#include "clapf/serving/admission_queue.h"
#include "clapf/serving/flight_recorder.h"
#include "clapf/util/status.h"

namespace clapf {

/// How the serving knobs are driven — named after the Linux cpufreq
/// governors whose control shapes they borrow.
enum class GovernorPolicy {
  /// Static: knobs stay at their configured rest values forever. This is
  /// exactly the pre-governor behavior and the default.
  kPerformance,
  /// Reactive: on queue pressure (high utilization, sheds, breaker trips,
  /// or a high deadline-miss rate) every knob steps to its most defensive
  /// bound in one tick; once pressure subsides the knobs decay back one
  /// relaxation step per `decay_ticks` calm ticks.
  kOndemand,
  /// Tracking: a proportional controller steers the admission bound toward
  /// a target p99 query latency, estimated from the serving latency
  /// histogram between ticks.
  kSchedutil,
};

/// Stable lowercase name ("performance", "ondemand", "schedutil").
const char* GovernorPolicyName(GovernorPolicy policy);

/// Parses a policy name; InvalidArgument on anything else.
Result<GovernorPolicy> ParseGovernorPolicy(const std::string& name);

/// Declared per-knob bounds. A governor may move a knob anywhere inside its
/// bounds and nowhere else — the bounds are the operator's contract that
/// adaptation can never shed everything or admit the world.
struct GovernorKnobBounds {
  /// Admission-queue depth range. max == 0 inherits the server's configured
  /// max_queue_depth (the rest value).
  int64_t min_queue_depth = 2;
  int64_t max_queue_depth = 0;
  /// Server-imposed per-query deadline budget range, microseconds. The rest
  /// value is `max_deadline_budget_us`, where 0 means "no server-side cap"
  /// (queries keep whatever deadline the client set). Under pressure a
  /// governor may cap budgets as low as `min_deadline_budget_us`.
  int64_t min_deadline_budget_us = 2000;
  int64_t max_deadline_budget_us = 0;
};

/// Current knob values, readable at any time (atomic copies).
struct GovernorKnobs {
  int64_t max_queue_depth = 0;
  int64_t deadline_budget_us = 0;  ///< 0 = no server-side cap
  bool force_packed = false;       ///< override QueryOptions::use_packed on
};

/// ServingGovernor construction knobs.
struct GovernorOptions {
  GovernorPolicy policy = GovernorPolicy::kPerformance;
  GovernorKnobBounds bounds;
  /// Ticker cadence for the dedicated governor thread; <= 0 disables the
  /// thread so only manual Tick() calls (tests, serving-loop piggyback)
  /// drive the control loop.
  int64_t interval_us = 50000;
  /// schedutil: target p99 query latency.
  double latency_target_ms = 5.0;
  /// schedutil: fraction of the depth error corrected per tick.
  double proportional_gain = 0.5;
  /// ondemand: queue utilization (depth / current bound) at or above which
  /// the policy steps to the defensive bounds.
  double queue_high_watermark = 0.75;
  /// ondemand: deadline-miss fraction since the last tick that counts as
  /// pressure on its own.
  double miss_rate_high_watermark = 0.5;
  /// ondemand: consecutive calm ticks before one relaxation step.
  int64_t decay_ticks = 3;
};

/// Periodically reads the serving metrics and adjusts the serving knobs
/// within declared bounds. One governor serves one ModelServer: it owns the
/// control state, publishes every current knob value as a gauge
/// (`serving.governor.queue_depth`, `serving.governor.deadline_budget_us`,
/// `serving.governor.force_packed`), and records every knob movement in the
/// flight recorder, so live exporter scrapes and post-incident dumps both
/// show what adaptation did and when.
///
/// Inputs per tick (all from the shared MetricsRegistry / admission queue):
/// instantaneous queue depth, deltas of the serving outcome counters
/// (queries, sheds, deadline misses, internal errors, breaker trips), and a
/// p99 estimate from the serving.query.latency_us histogram delta.
///
/// Thread-safe: Tick() may run on the internal ticker thread or be called
/// manually (deterministic drills); knobs() and ApplyToQuery() are lock-free
/// reads from any thread. Tick() itself is serialized by an internal mutex.
class ServingGovernor {
 public:
  /// `metrics`, `queue`, and `recorder` must outlive the governor; a zero
  /// bounds.max_queue_depth inherits `initial_queue_depth` as the rest
  /// value. Knobs start at rest (today's static behavior). The ticker
  /// thread is NOT started here — call Start().
  ServingGovernor(const GovernorOptions& options, int64_t initial_queue_depth,
                  MetricsRegistry* metrics, AdmissionQueue* queue,
                  FlightRecorder* recorder);
  ~ServingGovernor();

  ServingGovernor(const ServingGovernor&) = delete;
  ServingGovernor& operator=(const ServingGovernor&) = delete;

  /// Starts the dedicated ticker thread when the policy adapts
  /// (non-performance) and interval_us > 0; otherwise a no-op.
  void Start();

  /// Stops and joins the ticker thread; idempotent.
  void Stop();

  /// One control step: read inputs, move knobs (bounded), publish gauges,
  /// record decisions. Deterministic given the metric state, which is what
  /// the governor drills rely on.
  void Tick();

  /// Applies the current knobs to one query: forces the packed path when
  /// degraded to it, and caps the deadline at the current budget (a client
  /// deadline tighter than the budget is kept).
  void ApplyToQuery(QueryOptions* options) const;

  /// Atomic copy of the current knob values.
  GovernorKnobs knobs() const;

  GovernorPolicy policy() const { return options_.policy; }
  const GovernorKnobBounds& bounds() const { return options_.bounds; }
  int64_t ticks() const { return ticks_->Value(); }
  int64_t adjustments() const { return adjustments_->Value(); }

 private:
  struct Inputs {
    int64_t queue_depth = 0;       // instantaneous
    int64_t queries_delta = 0;     // since previous tick
    int64_t sheds_delta = 0;
    int64_t misses_delta = 0;
    int64_t internal_delta = 0;
    int64_t trips_delta = 0;
    double p99_us = -1.0;          // < 0 when no new latency samples landed
  };

  Inputs ReadInputs();
  void TickOndemand(const Inputs& in);
  void TickSchedutil(const Inputs& in);
  /// One decay step shared by both adaptive policies: queue depth doubles
  /// toward rest, then the deadline budget doubles toward rest, then the
  /// packed override drops — capacity first, quality last.
  void RelaxOneStep(const char* why);

  /// Bounded setters: clamp, store, propagate (queue bound), publish the
  /// gauge, and record a governor-adjust event when the value changed.
  void SetQueueDepth(int64_t depth, const char* why);
  void SetDeadlineBudget(int64_t budget_us, const char* why);
  void SetForcePacked(bool on, const char* why);

  int64_t rest_queue_depth() const { return options_.bounds.max_queue_depth; }
  int64_t rest_deadline_budget_us() const {
    return options_.bounds.max_deadline_budget_us;
  }

  GovernorOptions options_;
  MetricsRegistry* metrics_;
  AdmissionQueue* queue_;
  FlightRecorder* recorder_;

  // Live knob values (lock-free reads on the serving path).
  std::atomic<int64_t> knob_queue_depth_;
  std::atomic<int64_t> knob_deadline_budget_us_;
  std::atomic<bool> knob_force_packed_{false};

  // Tick-serialized control state.
  std::mutex tick_mu_;
  int64_t calm_ticks_ = 0;
  int64_t prev_queries_ = 0;
  int64_t prev_sheds_ = 0;
  int64_t prev_misses_ = 0;
  int64_t prev_internal_ = 0;
  int64_t prev_trips_ = 0;
  HistogramSnapshot prev_latency_;

  // Shared-registry handles (inputs) and published state (outputs).
  Counter* queries_in_;
  Counter* sheds_in_;
  Counter* misses_in_;
  Counter* internal_in_;
  Counter* trips_in_;
  Histogram* latency_in_;
  Gauge* queue_depth_gauge_;
  Gauge* deadline_budget_gauge_;
  Gauge* force_packed_gauge_;
  Counter* ticks_;
  Counter* adjustments_;

  // Ticker thread.
  std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;
  std::thread ticker_;
};

/// Upper-bound p99-style estimate from a histogram delta: the inclusive
/// upper bound of the bucket holding quantile `q` (twice the last finite
/// bound for the overflow bucket). Returns -1 when the delta holds no
/// samples. Exposed for the governor tests.
double HistogramQuantileUpperBound(const HistogramSnapshot& snapshot,
                                   double q);

/// Bucket-wise difference `cur - prev` (same bounds required); used to
/// derive per-tick latency distributions from cumulative histograms.
HistogramSnapshot HistogramDelta(const HistogramSnapshot& prev,
                                 const HistogramSnapshot& cur);

}  // namespace clapf

#endif  // CLAPF_SERVING_GOVERNOR_H_
