#include "clapf/serving/model_server.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <utility>

#include "clapf/core/ranker.h"
#include "clapf/data/split.h"
#include "clapf/eval/sampled_evaluator.h"
#include "clapf/model/model_io.h"
#include "clapf/obs/trace_span.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"
#include "clapf/util/top_k.h"

namespace clapf {

ModelServer::ModelServer(Dataset history, const ServerOptions& options)
    : history_(std::move(history)),
      options_(options),
      query_latency_(metrics_.GetHistogram("serving.query.latency_us",
                                           LatencyBucketsUs())),
      batch_latency_(metrics_.GetHistogram("serving.batch.latency_us",
                                           LatencyBucketsUs())),
      queue_(std::max(1, options.num_threads), options.max_queue_depth,
             &metrics_),
      stats_(&metrics_) {
  auto counts = history_.ItemPopularity();
  popularity_.assign(counts.begin(), counts.end());
  if (options_.canary.enabled && options_.canary.min_auc > 0.0) {
    // Re-hold a slice of the history out as the canary probe: a healthy
    // model (trained on data containing the probe) ranks it far above
    // sampled negatives, while a corrupt or mistrained candidate scores
    // ~0.5. The gate detects gross degradation, not overfitting.
    TrainTestSplit split =
        SplitRandom(history_, 1.0 - options_.canary.probe_fraction,
                    options_.canary.seed);
    probe_train_ = std::move(split.train);
    probe_test_ = std::move(split.test);
  }
}

std::shared_ptr<const ModelServer::Snapshot> ModelServer::Acquire() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return current_;
}

Status ModelServer::GateCandidate(const FactorModel& candidate,
                                  const PackedSnapshot* packed,
                                  const std::string& context) const {
  if (candidate.num_users() != history_.num_users() ||
      candidate.num_items() != history_.num_items()) {
    return Status::InvalidArgument(
        context + " dimensions (" + std::to_string(candidate.num_users()) +
        "x" + std::to_string(candidate.num_items()) +
        ") disagree with serving history (" +
        std::to_string(history_.num_users()) + "x" +
        std::to_string(history_.num_items()) + ")");
  }
  if (!options_.canary.enabled) return Status::OK();
  CLAPF_RETURN_IF_ERROR(VerifyModelIntegrity(candidate, context));
  if (packed != nullptr && options_.canary.packed_agreement_users > 0) {
    // Packed half of the gate: the SIMD repack that will serve must agree
    // with the exact model within the documented bound before it swaps in.
    CLAPF_RETURN_IF_ERROR(VerifyPackedAgreement(
        candidate, *packed, options_.canary.packed_agreement_users, context));
  }
  if (options_.canary.min_auc > 0.0 && probe_test_.num_interactions() > 0) {
    SampledEvaluator eval(&probe_train_, &probe_test_,
                          options_.canary.probe_negatives,
                          options_.canary.seed);
    // Probe through the packed kernels when they will serve — the gate then
    // vets the exact code path production queries take.
    FactorModelRanker ranker(&candidate, packed);
    const double auc = eval.Evaluate(ranker, {5}).auc;
    if (auc < options_.canary.min_auc) {
      return Status::FailedPrecondition(
          context + " failed canary: sampled AUC " + std::to_string(auc) +
          " below floor " + std::to_string(options_.canary.min_auc));
    }
  }
  return Status::OK();
}

Status ModelServer::Publish(FactorModel candidate) {
  FaultInjector& faults = FaultInjector::Instance();
  if (faults.armed() &&
      faults.ShouldFire(FaultPoint::kServeCorruptCandidate) &&
      !candidate.mutable_user_factor_data().empty()) {
    candidate.mutable_user_factor_data()[0] =
        std::numeric_limits<double>::quiet_NaN();
  }

  // Repack for SIMD serving before the gate so the canary can vet the very
  // snapshot that will answer queries (agreement check + packed AUC probe).
  std::shared_ptr<const PackedSnapshot> packed;
  if (options_.packed) {
    packed =
        std::make_shared<PackedSnapshot>(PackedSnapshot::Build(candidate));
  }

  Status gate = GateCandidate(candidate, packed.get(), "serving candidate");
  if (!gate.ok()) {
    stats_.RecordCanaryReject();
    CLAPF_LOG(Warning) << "canary gate rejected candidate, prior snapshot "
                          "keeps serving: "
                       << gate.ToString();
    return gate;
  }
  auto rec = Recommender::Create(std::move(candidate), history_);
  if (!rec.ok()) {
    stats_.RecordCanaryReject();
    return rec.status();
  }
  rec->SetMetrics(&metrics_);
  rec->AdoptPacked(std::move(packed));  // null when packed serving is off

  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    auto snap = std::make_shared<Snapshot>(
        Snapshot{next_version_++, *std::move(rec)});
    previous_ = current_;
    current_ = std::move(snap);
  }
  stats_.RecordPublish();
  {
    // A fresh model gets a fresh breaker window: errors charged to the old
    // snapshot must not trip the breaker on the new one.
    std::lock_guard<std::mutex> lock(breaker_mu_);
    window_queries_ = 0;
    window_errors_ = 0;
  }
  return Status::OK();
}

Status ModelServer::PublishFromFile(const std::string& path) {
  auto model = LoadModel(path);  // CRC-verified by the wire format
  if (!model.ok()) {
    stats_.RecordCanaryReject();
    CLAPF_LOG(Warning) << "candidate file rejected, prior snapshot keeps "
                          "serving: "
                       << model.status().ToString();
    return model.status();
  }
  return Publish(*std::move(model));
}

Result<std::vector<ScoredItem>> ModelServer::ServeDegraded(
    UserId u, size_t k, const QueryOptions& options) const {
  if (u < 0 || u >= history_.num_users()) {
    return Status::OutOfRange("unknown user id " + std::to_string(u));
  }
  k = ClampK(k, history_.num_items());
  if (k == 0) return std::vector<ScoredItem>{};
  std::vector<bool> excluded(static_cast<size_t>(history_.num_items()),
                             false);
  for (ItemId i : history_.ItemsOf(u)) {
    excluded[static_cast<size_t>(i)] = true;
  }
  for (ItemId i : options.exclude) {
    if (i >= 0 && i < history_.num_items()) {
      excluded[static_cast<size_t>(i)] = true;
    }
  }
  std::vector<ScoredItem> top = SelectTopK(popularity_, excluded, k);
  if (options.min_score) {
    auto first_below = std::find_if(
        top.begin(), top.end(),
        [&](const ScoredItem& s) { return s.score < *options.min_score; });
    top.erase(first_below, top.end());
  }
  return top;
}

Result<std::vector<ScoredItem>> ModelServer::ServeOne(
    UserId u, size_t k, const QueryOptions& options) {
  auto snapshot = Acquire();
  if (snapshot == nullptr) {
    stats_.RecordDegraded();
    return ServeDegraded(u, k, options);
  }
  auto got = snapshot->recommender.Recommend(u, k, options);
  if (!got.ok()) return got;

  FaultInjector& faults = FaultInjector::Instance();
  if (faults.armed() && !got->empty() &&
      faults.ShouldFire(FaultPoint::kServeScoreNan)) {
    (*got)[0].score = std::numeric_limits<double>::quiet_NaN();
  }
  // Serve-time integrity: a snapshot that passed the gate can still rot
  // (or a gate-bypassing bug can ship garbage); non-finite scores become a
  // typed Internal error that feeds the circuit breaker instead of leaking
  // NaN rankings to clients.
  for (const ScoredItem& item : *got) {
    if (!std::isfinite(item.score)) {
      return Status::Internal("non-finite score served for user " +
                              std::to_string(u) + " by model v" +
                              std::to_string(snapshot->version));
    }
  }
  return got;
}

Result<BatchReply> ModelServer::ServeBatch(std::span<const UserId> users,
                                           size_t k,
                                           const QueryOptions& options) {
  auto snapshot = Acquire();
  if (snapshot == nullptr) {
    for (UserId u : users) {
      if (u < 0 || u >= history_.num_users()) {
        return Status::OutOfRange("unknown user id " + std::to_string(u));
      }
    }
    BatchReply reply;
    reply.results.resize(users.size());
    reply.complete.assign(users.size(), 1);
    reply.num_complete = users.size();
    for (size_t i = 0; i < users.size(); ++i) {
      stats_.RecordDegraded();
      auto one = ServeDegraded(users[i], k, options);
      if (!one.ok()) return one.status();
      reply.results[i] = *std::move(one);
    }
    return reply;
  }

  // Parallelism is across requests, not within one: the batch runs serially
  // on its worker so a single request cannot monopolize the pool.
  QueryOptions serial = options;
  serial.num_threads = 1;
  auto reply = snapshot->recommender.RecommendBatchPartial(users, k, serial);
  if (!reply.ok()) return reply;

  FaultInjector& faults = FaultInjector::Instance();
  for (auto& list : reply->results) {
    if (faults.armed() && !list.empty() &&
        faults.ShouldFire(FaultPoint::kServeScoreNan)) {
      list[0].score = std::numeric_limits<double>::quiet_NaN();
    }
    for (const ScoredItem& item : list) {
      if (!std::isfinite(item.score)) {
        return Status::Internal("non-finite score in batch served by model v" +
                                std::to_string(snapshot->version));
      }
    }
  }
  return reply;
}

Result<std::vector<ScoredItem>> ModelServer::Recommend(
    UserId u, size_t k, const QueryOptions& options) {
  stats_.RecordQuery();
  TraceSpan span(query_latency_);
  std::promise<Result<std::vector<ScoredItem>>> promise;
  auto future = promise.get_future();
  Status admitted = queue_.Submit(
      [this, u, k, &options, &promise] {
        promise.set_value(ServeOne(u, k, options));
      });
  if (!admitted.ok()) {
    // Shed requests never ran; their (near-zero) latency would only skew
    // the serving distribution, so the span is abandoned, not recorded.
    span.Cancel();
    stats_.RecordShed();
    return admitted;
  }
  auto out = future.get();
  span.Stop();
  RecordOutcome(out.status());
  return out;
}

Result<BatchReply> ModelServer::RecommendBatch(std::span<const UserId> users,
                                               size_t k,
                                               const QueryOptions& options) {
  stats_.RecordQuery();
  TraceSpan span(batch_latency_);
  std::promise<Result<BatchReply>> promise;
  auto future = promise.get_future();
  Status admitted = queue_.Submit(
      [this, users, k, &options, &promise] {
        promise.set_value(ServeBatch(users, k, options));
      });
  if (!admitted.ok()) {
    span.Cancel();
    stats_.RecordShed();
    return admitted;
  }
  auto out = future.get();
  span.Stop();
  if (out.ok() && out->deadline_exceeded) {
    RecordOutcome(Status::DeadlineExceeded("partial batch"));
  } else {
    RecordOutcome(out.status());
  }
  return out;
}

void ModelServer::RecordOutcome(const Status& status) {
  bool breaker_error = false;
  switch (status.code()) {
    case StatusCode::kOk:
      stats_.RecordOk();
      break;
    case StatusCode::kDeadlineExceeded:
      // A capacity signal, not a model-health signal: deadlines feed the
      // stats (and capacity planning), never the breaker.
      stats_.RecordDeadlineExceeded();
      break;
    case StatusCode::kOutOfRange:
    case StatusCode::kInvalidArgument:
      stats_.RecordClientError();
      break;
    default:
      stats_.RecordInternalError();
      breaker_error = true;
      break;
  }
  if (!options_.breaker.enabled) return;

  bool trip = false;
  {
    std::lock_guard<std::mutex> lock(breaker_mu_);
    ++window_queries_;
    if (breaker_error) ++window_errors_;
    if (window_queries_ >= options_.breaker.min_samples) {
      const double rate = static_cast<double>(window_errors_) /
                          static_cast<double>(window_queries_);
      if (rate >= options_.breaker.error_threshold) {
        trip = true;
        window_queries_ = 0;
        window_errors_ = 0;
      } else if (window_queries_ >= options_.breaker.window) {
        window_queries_ = 0;
        window_errors_ = 0;
      }
    }
  }
  if (trip) TripBreaker();
}

void ModelServer::TripBreaker() {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  stats_.RecordBreakerTrip();
  if (previous_ != nullptr) {
    CLAPF_LOG(Warning) << "circuit breaker tripped on model v"
                       << (current_ != nullptr ? current_->version : 0)
                       << ": rolling back to v" << previous_->version;
    current_ = previous_;
    previous_.reset();
    stats_.RecordRollback();
  } else {
    CLAPF_LOG(Warning) << "circuit breaker tripped with no rollback target: "
                          "degrading to popularity fallback";
    current_.reset();
  }
}

int64_t ModelServer::version() const {
  auto snapshot = Acquire();
  return snapshot != nullptr ? snapshot->version : 0;
}

bool ModelServer::degraded() const { return Acquire() == nullptr; }

ServingStatsSnapshot ModelServer::stats() const { return stats_.Snapshot(); }

}  // namespace clapf
