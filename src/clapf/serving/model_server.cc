#include "clapf/serving/model_server.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <utility>

#include "clapf/core/ranker.h"
#include "clapf/data/split.h"
#include "clapf/eval/sampled_evaluator.h"
#include "clapf/model/model_io.h"
#include "clapf/obs/trace_span.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"
#include "clapf/util/top_k.h"

namespace clapf {

ModelServer::ModelServer(Dataset history, const ServerOptions& options)
    : history_(std::move(history)),
      options_(options),
      query_latency_(metrics_.GetHistogram("serving.query.latency_us",
                                           LatencyBucketsUs())),
      batch_latency_(metrics_.GetHistogram("serving.batch.latency_us",
                                           LatencyBucketsUs())),
      recorder_(static_cast<size_t>(
          std::max<int64_t>(1, options.flight_recorder_capacity))),
      queue_(std::max(1, options.num_threads), options.max_queue_depth,
             &metrics_),
      stats_(&metrics_) {
  auto counts = history_.ItemPopularity();
  popularity_.assign(counts.begin(), counts.end());
  if (options_.canary.enabled && options_.canary.min_auc > 0.0) {
    // Re-hold a slice of the history out as the canary probe: a healthy
    // model (trained on data containing the probe) ranks it far above
    // sampled negatives, while a corrupt or mistrained candidate scores
    // ~0.5. The gate detects gross degradation, not overfitting.
    TrainTestSplit split =
        SplitRandom(history_, 1.0 - options_.canary.probe_fraction,
                    options_.canary.seed);
    probe_train_ = std::move(split.train);
    probe_test_ = std::move(split.test);
  }
  governor_ = std::make_unique<ServingGovernor>(
      options_.governor, options_.max_queue_depth, &metrics_, &queue_,
      &recorder_);
  governor_->Start();
}

ModelServer::~ModelServer() {
  governor_->Stop();
  queue_.Wait();
}

std::shared_ptr<const ModelServer::Snapshot> ModelServer::Acquire() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return current_;
}

Status ModelServer::GateCandidate(const FactorModel& candidate,
                                  const PackedSnapshot* packed,
                                  const std::string& context) const {
  if (candidate.num_users() != history_.num_users() ||
      candidate.num_items() != history_.num_items()) {
    return Status::InvalidArgument(
        context + " dimensions (" + std::to_string(candidate.num_users()) +
        "x" + std::to_string(candidate.num_items()) +
        ") disagree with serving history (" +
        std::to_string(history_.num_users()) + "x" +
        std::to_string(history_.num_items()) + ")");
  }
  if (!options_.canary.enabled) return Status::OK();
  CLAPF_RETURN_IF_ERROR(VerifyModelIntegrity(candidate, context));
  if (packed != nullptr && options_.canary.packed_agreement_users > 0) {
    // Packed half of the gate: the SIMD repack that will serve must agree
    // with the exact model within the documented bound before it swaps in.
    CLAPF_RETURN_IF_ERROR(VerifyPackedAgreement(
        candidate, *packed, options_.canary.packed_agreement_users, context));
  }
  if (options_.canary.min_auc > 0.0 && probe_test_.num_interactions() > 0) {
    SampledEvaluator eval(&probe_train_, &probe_test_,
                          options_.canary.probe_negatives,
                          options_.canary.seed);
    // Probe through the packed kernels when they will serve — the gate then
    // vets the exact code path production queries take.
    FactorModelRanker ranker(&candidate, packed);
    const double auc = eval.Evaluate(ranker, {5}).auc;
    if (auc < options_.canary.min_auc) {
      return Status::FailedPrecondition(
          context + " failed canary: sampled AUC " + std::to_string(auc) +
          " below floor " + std::to_string(options_.canary.min_auc));
    }
  }
  return Status::OK();
}

Status ModelServer::PublishModel(PublishRequest request) {
  if (request.model.has_value() && !request.path.empty()) {
    return Status::InvalidArgument(
        "publish request carries both an in-memory model and a file path");
  }
  if (request.shard != kAllShards && request.shard != 0) {
    return Status::InvalidArgument(
        "publish targets shard " + std::to_string(request.shard) +
        " but this server is single-shard; use ShardedModelServer");
  }
  if (request.tenant != kDefaultTenant) {
    return Status::InvalidArgument(
        "publish targets tenant \"" + request.tenant +
        "\" but this server is single-tenant; use ShardedModelServer");
  }
  if (request.model.has_value()) {
    return PublishCandidate(*std::move(request.model));
  }
  if (request.path.empty()) {
    return Status::InvalidArgument(
        "publish request carries neither a model nor a file path");
  }
  auto model = LoadModel(request.path);  // CRC-verified by the wire format
  if (!model.ok()) {
    stats_.RecordCanaryReject();
    recorder_.Record(FlightEventKind::kCanaryReject,
                     model.status().message());
    CLAPF_LOG(Warning) << "candidate file rejected, prior snapshot keeps "
                          "serving: "
                       << model.status().ToString();
    return model.status();
  }
  return PublishCandidate(*std::move(model));
}

Status ModelServer::PublishCandidate(FactorModel candidate) {
  FaultInjector& faults = FaultInjector::Instance();
  if (faults.armed() &&
      faults.ShouldFire(FaultPoint::kServeCorruptCandidate) &&
      !candidate.mutable_user_factor_data().empty()) {
    candidate.mutable_user_factor_data()[0] =
        std::numeric_limits<double>::quiet_NaN();
  }

  // Repack for SIMD serving before the gate so the canary can vet the very
  // snapshot that will answer queries (agreement check + packed AUC probe).
  std::shared_ptr<const PackedSnapshot> packed;
  if (options_.packed) {
    packed =
        std::make_shared<PackedSnapshot>(PackedSnapshot::Build(candidate));
  }

  // Build the IVF index the same way: before the gate, so what is vetted
  // (binding + measured recall) is exactly what will serve. When the
  // serving snapshot already carries a compatible index, rebuild
  // incrementally — frozen centroids, only parameter-changed items
  // reassigned — which is what keeps online republish cadence affordable.
  std::shared_ptr<IvfIndex> ivf;
  if (options_.packed && options_.ann) {
    auto prev = Acquire();
    const IvfIndex* prev_ivf =
        prev != nullptr ? prev->recommender.ivf_index() : nullptr;
    if (prev_ivf != nullptr) {
      int64_t reassigned = 0;
      auto rebuilt =
          IvfIndex::RebuildDirty(*prev_ivf, candidate, options_.ivf,
                                 &reassigned);
      // A majority-dirty republish means the catalog's geometry moved out
      // from under the frozen centroids; measured recall would pay for the
      // stale partition. Retrain from scratch instead — incremental
      // reassignment only wins when the republish is a sliver.
      if (rebuilt.ok() && 2 * reassigned <= candidate.num_items()) {
        ivf = std::make_shared<IvfIndex>(std::move(rebuilt).value());
        metrics_.GetCounter("ann.index_rebuilds_incremental_total")->Inc();
        metrics_.GetCounter("ann.index_items_reassigned_total")
            ->Inc(reassigned);
      }
    }
    if (ivf == nullptr) {
      ivf = std::make_shared<IvfIndex>(
          IvfIndex::Build(candidate, options_.ivf));
      metrics_.GetCounter("ann.index_builds_total")->Inc();
    }
    if (faults.armed() && faults.ShouldFire(FaultPoint::kAnnCorruptIndex)) {
      ivf->DesyncForTesting();
    }
    if (options_.ivf.pq && faults.armed() &&
        faults.ShouldFire(FaultPoint::kAnnCorruptCodes)) {
      ivf->CorruptPqForTesting();
    }
  }

  Status gate = GateCandidate(candidate, packed.get(), "serving candidate");
  if (gate.ok() && ivf != nullptr && options_.canary.enabled) {
    // ANN half of the gate: the index must be bound to this candidate's
    // exact parameter bytes, and its measured recall@k at the default
    // nprobe must clear the contract floor vs the exact fused scan. With a
    // code book on board the gate measures the *composed* quantized+re-rank
    // path — the strictly stronger check, and the only one that can catch a
    // corrupted or desynced code book (all structural checks pass on it).
    gate = VerifyIvfBinding(candidate, *ivf, "serving candidate");
    if (gate.ok() && options_.canary.ann_recall_floor > 0.0) {
      const size_t gate_k =
          static_cast<size_t>(std::max(1, options_.canary.ann_recall_k));
      gate = ivf->has_pq()
                 ? VerifyPqRecall(*packed, *ivf,
                                  options_.canary.ann_recall_users, gate_k,
                                  /*nprobe=*/0, /*rerank_budget=*/0,
                                  options_.canary.ann_recall_floor,
                                  "serving candidate")
                 : VerifyIvfRecall(*packed, *ivf,
                                   options_.canary.ann_recall_users, gate_k,
                                   /*nprobe=*/0,
                                   options_.canary.ann_recall_floor,
                                   "serving candidate");
    }
    metrics_
        .GetCounter(gate.ok() ? "ann.recall_gate_pass_total"
                              : "ann.recall_gate_fail_total")
        ->Inc();
  }
  if (!gate.ok()) {
    stats_.RecordCanaryReject();
    recorder_.Record(FlightEventKind::kCanaryReject, gate.message());
    CLAPF_LOG(Warning) << "canary gate rejected candidate, prior snapshot "
                          "keeps serving: "
                       << gate.ToString();
    return gate;
  }
  auto rec = Recommender::Create(std::move(candidate), history_);
  if (!rec.ok()) {
    stats_.RecordCanaryReject();
    recorder_.Record(FlightEventKind::kCanaryReject, rec.status().message());
    return rec.status();
  }
  rec->SetMetrics(&metrics_);
  rec->AdoptPacked(std::move(packed));  // null when packed serving is off
  rec->AdoptIvf(std::move(ivf));        // null when ANN serving is off

  int64_t published_version = 0;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    auto snap = std::make_shared<Snapshot>(
        Snapshot{next_version_++, *std::move(rec)});
    published_version = snap->version;
    previous_ = current_;
    current_ = std::move(snap);
    // A publish supersedes any pending half-open recovery: the operator has
    // explicitly shipped a replacement, so the stashed tripped snapshot is
    // no longer a probe candidate.
    tripped_.reset();
    probe_fallback_.reset();
  }
  stats_.RecordPublish();
  recorder_.Record(FlightEventKind::kPublish,
                   "candidate cleared the canary gate", published_version);
  {
    // A fresh model gets a fresh breaker window: errors charged to the old
    // snapshot must not trip the breaker on the new one. Any cooldown or
    // probe in flight is canceled for the same reason.
    std::lock_guard<std::mutex> lock(breaker_mu_);
    window_queries_ = 0;
    window_errors_ = 0;
    breaker_state_ = BreakerState::kClosed;
    cooldown_left_ = 0;
    probe_left_ = 0;
    probe_errors_ = 0;
  }
  return Status::OK();
}

Result<std::vector<ScoredItem>> ModelServer::ServeDegraded(
    UserId u, size_t k, const QueryOptions& options) const {
  if (u < 0 || u >= history_.num_users()) {
    return Status::OutOfRange("unknown user id " + std::to_string(u));
  }
  k = ClampK(k, history_.num_items());
  if (k == 0) return std::vector<ScoredItem>{};
  std::vector<bool> excluded(static_cast<size_t>(history_.num_items()),
                             false);
  for (ItemId i : history_.ItemsOf(u)) {
    excluded[static_cast<size_t>(i)] = true;
  }
  for (ItemId i : options.exclude) {
    if (i >= 0 && i < history_.num_items()) {
      excluded[static_cast<size_t>(i)] = true;
    }
  }
  std::vector<ScoredItem> top = SelectTopK(popularity_, excluded, k);
  if (options.min_score) {
    auto first_below = std::find_if(
        top.begin(), top.end(),
        [&](const ScoredItem& s) { return s.score < *options.min_score; });
    top.erase(first_below, top.end());
  }
  return top;
}

Result<std::vector<ScoredItem>> ModelServer::ServeOne(
    UserId u, size_t k, const QueryOptions& options) {
  auto snapshot = Acquire();
  if (snapshot == nullptr) {
    stats_.RecordDegraded();
    return ServeDegraded(u, k, options);
  }
  auto got = snapshot->recommender.Recommend(u, k, options);
  if (!got.ok()) return got;

  FaultInjector& faults = FaultInjector::Instance();
  if (faults.armed() && !got->empty() &&
      faults.ShouldFire(FaultPoint::kServeScoreNan)) {
    (*got)[0].score = std::numeric_limits<double>::quiet_NaN();
  }
  // Serve-time integrity: a snapshot that passed the gate can still rot
  // (or a gate-bypassing bug can ship garbage); non-finite scores become a
  // typed Internal error that feeds the circuit breaker instead of leaking
  // NaN rankings to clients.
  for (const ScoredItem& item : *got) {
    if (!std::isfinite(item.score)) {
      return Status::Internal("non-finite score served for user " +
                              std::to_string(u) + " by model v" +
                              std::to_string(snapshot->version));
    }
  }
  return got;
}

Result<BatchReply> ModelServer::ServeBatch(std::span<const UserId> users,
                                           size_t k,
                                           const QueryOptions& options) {
  auto snapshot = Acquire();
  if (snapshot == nullptr) {
    for (UserId u : users) {
      if (u < 0 || u >= history_.num_users()) {
        return Status::OutOfRange("unknown user id " + std::to_string(u));
      }
    }
    BatchReply reply;
    reply.results.resize(users.size());
    reply.complete.assign(users.size(), 1);
    reply.num_complete = users.size();
    for (size_t i = 0; i < users.size(); ++i) {
      stats_.RecordDegraded();
      auto one = ServeDegraded(users[i], k, options);
      if (!one.ok()) return one.status();
      reply.results[i] = *std::move(one);
    }
    return reply;
  }

  // Parallelism is across requests, not within one: the batch runs serially
  // on its worker so a single request cannot monopolize the pool.
  QueryOptions serial = options;
  serial.num_threads = 1;
  auto reply = snapshot->recommender.RecommendBatchPartial(users, k, serial);
  if (!reply.ok()) return reply;

  FaultInjector& faults = FaultInjector::Instance();
  for (auto& list : reply->results) {
    if (faults.armed() && !list.empty() &&
        faults.ShouldFire(FaultPoint::kServeScoreNan)) {
      list[0].score = std::numeric_limits<double>::quiet_NaN();
    }
    for (const ScoredItem& item : list) {
      if (!std::isfinite(item.score)) {
        return Status::Internal("non-finite score in batch served by model v" +
                                std::to_string(snapshot->version));
      }
    }
  }
  return reply;
}

Result<std::vector<ScoredItem>> ModelServer::Recommend(
    UserId u, size_t k, const QueryOptions& options) {
  stats_.RecordQuery();
  // The governor's current knobs shape this query: a degraded serving mode
  // may force the packed path or cap the deadline budget.
  QueryOptions effective = options;
  governor_->ApplyToQuery(&effective);
  TraceSpan span(query_latency_);
  std::promise<Result<std::vector<ScoredItem>>> promise;
  auto future = promise.get_future();
  Status admitted = queue_.Submit(
      [this, u, k, &effective, &promise] {
        promise.set_value(ServeOne(u, k, effective));
      });
  if (!admitted.ok()) {
    // Shed requests never ran; their (near-zero) latency would only skew
    // the serving distribution, so the span is abandoned, not recorded.
    span.Cancel();
    stats_.RecordShed();
    recorder_.Record(FlightEventKind::kShed, "query shed at admission",
                     queue_.depth(), queue_.max_depth());
    return admitted;
  }
  auto out = future.get();
  span.Stop();
  const double elapsed_us = span.ElapsedMicros();
  if (options_.slow_query_us > 0 &&
      elapsed_us >= static_cast<double>(options_.slow_query_us)) {
    recorder_.Record(FlightEventKind::kSlowQuery,
                     "query served above slow threshold", u, 0, elapsed_us);
  }
  RecordOutcome(out.status());
  return out;
}

Result<BatchReply> ModelServer::RecommendBatch(std::span<const UserId> users,
                                               size_t k,
                                               const QueryOptions& options) {
  stats_.RecordQuery();
  QueryOptions effective = options;
  governor_->ApplyToQuery(&effective);
  TraceSpan span(batch_latency_);
  std::promise<Result<BatchReply>> promise;
  auto future = promise.get_future();
  Status admitted = queue_.Submit(
      [this, users, k, &effective, &promise] {
        promise.set_value(ServeBatch(users, k, effective));
      });
  if (!admitted.ok()) {
    span.Cancel();
    stats_.RecordShed();
    recorder_.Record(FlightEventKind::kShed, "batch shed at admission",
                     queue_.depth(), queue_.max_depth());
    return admitted;
  }
  auto out = future.get();
  span.Stop();
  const double elapsed_us = span.ElapsedMicros();
  if (options_.slow_query_us > 0 &&
      elapsed_us >= static_cast<double>(options_.slow_query_us)) {
    recorder_.Record(FlightEventKind::kSlowQuery,
                     "batch served above slow threshold",
                     static_cast<int64_t>(users.size()), 0, elapsed_us);
  }
  if (out.ok() && out->deadline_exceeded) {
    RecordOutcome(Status::DeadlineExceeded("partial batch"));
  } else {
    RecordOutcome(out.status());
  }
  return out;
}

void ModelServer::RecordOutcome(const Status& status) {
  bool breaker_error = false;
  // Outcomes that actually exercised the served model and can therefore
  // judge its health — what the half-open probe window counts. Deadline
  // misses and client errors say nothing about the snapshot under probe.
  bool judges_model = false;
  switch (status.code()) {
    case StatusCode::kOk:
      stats_.RecordOk();
      judges_model = true;
      break;
    case StatusCode::kDeadlineExceeded:
      // A capacity signal, not a model-health signal: deadlines feed the
      // stats (and capacity planning), never the breaker.
      stats_.RecordDeadlineExceeded();
      recorder_.Record(FlightEventKind::kDeadlineMiss, status.message());
      break;
    case StatusCode::kOutOfRange:
    case StatusCode::kInvalidArgument:
      stats_.RecordClientError();
      break;
    default:
      stats_.RecordInternalError();
      recorder_.Record(FlightEventKind::kInternalError, status.message());
      breaker_error = true;
      judges_model = true;
      break;
  }
  if (!options_.breaker.enabled) return;

  // Decide under breaker_mu_, act after releasing it: the actions take
  // snapshot_mu_, and the two locks are never held together.
  enum class Action { kNone, kTrip, kBeginProbe, kResolveProbe };
  Action action = Action::kNone;
  bool probe_recovered = false;
  double probe_rate = 0.0;
  {
    std::lock_guard<std::mutex> lock(breaker_mu_);
    if (breaker_state_ == BreakerState::kHalfOpen) {
      // The probe window judges the re-admitted snapshot alone; the tumbling
      // window is suspended so the probe's verdict cannot double-trip.
      if (judges_model) {
        if (breaker_error) ++probe_errors_;
        if (--probe_left_ <= 0) {
          probe_rate =
              static_cast<double>(probe_errors_) /
              static_cast<double>(std::max<int64_t>(
                  1, options_.breaker.probe_window));
          probe_recovered = probe_rate < options_.breaker.error_threshold;
          action = Action::kResolveProbe;
          breaker_state_ = BreakerState::kClosed;
          window_queries_ = 0;
          window_errors_ = 0;
        }
      }
    } else {
      ++window_queries_;
      if (breaker_error) ++window_errors_;
      if (window_queries_ >= options_.breaker.min_samples) {
        const double rate = static_cast<double>(window_errors_) /
                            static_cast<double>(window_queries_);
        if (rate >= options_.breaker.error_threshold) {
          action = Action::kTrip;
          window_queries_ = 0;
          window_errors_ = 0;
        } else if (window_queries_ >= options_.breaker.window) {
          window_queries_ = 0;
          window_errors_ = 0;
        }
      }
      if (action == Action::kNone &&
          breaker_state_ == BreakerState::kCooldown) {
        if (--cooldown_left_ <= 0) {
          action = Action::kBeginProbe;
          breaker_state_ = BreakerState::kHalfOpen;
          probe_left_ = std::max<int64_t>(1, options_.breaker.probe_window);
          probe_errors_ = 0;
        }
      }
    }
  }
  switch (action) {
    case Action::kTrip:
      TripBreaker();
      break;
    case Action::kBeginProbe:
      BeginProbe();
      break;
    case Action::kResolveProbe:
      ResolveProbe(probe_recovered, probe_rate);
      break;
    case Action::kNone:
      break;
  }
}

void ModelServer::TripBreaker() {
  bool have_probe_candidate = false;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    stats_.RecordBreakerTrip();
    const int64_t from_version =
        current_ != nullptr ? current_->version : 0;
    recorder_.Record(FlightEventKind::kBreakerTrip,
                     "error-rate breaker fired", from_version);
    // Stash the failing snapshot for a later half-open probe; a newer trip
    // replaces any older, never-probed candidate.
    if (options_.breaker.half_open && current_ != nullptr) {
      tripped_ = current_;
      have_probe_candidate = true;
    } else {
      tripped_.reset();
    }
    probe_fallback_.reset();
    if (previous_ != nullptr) {
      CLAPF_LOG(Warning) << "circuit breaker tripped on model v"
                         << from_version << ": rolling back to v"
                         << previous_->version;
      recorder_.Record(FlightEventKind::kRollback,
                       "rolled back to previous snapshot", from_version,
                       previous_->version);
      current_ = previous_;
      previous_.reset();
      stats_.RecordRollback();
    } else {
      CLAPF_LOG(Warning) << "circuit breaker tripped with no rollback "
                            "target: degrading to popularity fallback";
      recorder_.Record(FlightEventKind::kDegrade,
                       "no rollback target; degraded to popularity fallback",
                       from_version);
      current_.reset();
    }
  }
  {
    std::lock_guard<std::mutex> lock(breaker_mu_);
    if (have_probe_candidate && options_.breaker.cooldown_queries > 0) {
      breaker_state_ = BreakerState::kCooldown;
      cooldown_left_ = options_.breaker.cooldown_queries;
    } else {
      breaker_state_ = BreakerState::kClosed;
    }
    probe_left_ = 0;
    probe_errors_ = 0;
    window_queries_ = 0;
    window_errors_ = 0;
  }
  if (!options_.flight_dump_path.empty()) {
    // Incident black box: the dump is on disk before anyone asks for it.
    Status dumped = recorder_.DumpJsonFile(options_.flight_dump_path);
    if (!dumped.ok()) {
      CLAPF_LOG(Warning) << "flight-recorder dump to "
                         << options_.flight_dump_path
                         << " failed: " << dumped.ToString();
    }
  }
}

void ModelServer::BeginProbe() {
  bool started = false;
  int64_t probe_version = 0;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (tripped_ != nullptr) {
      probe_fallback_ = current_;
      probe_version = tripped_->version;
      current_ = tripped_;
      started = true;
    }
  }
  if (!started) {
    // A publish raced the probe open and superseded the stashed snapshot;
    // nothing to probe.
    std::lock_guard<std::mutex> lock(breaker_mu_);
    breaker_state_ = BreakerState::kClosed;
    probe_left_ = 0;
    probe_errors_ = 0;
    return;
  }
  stats_.RecordProbe();
  recorder_.Record(FlightEventKind::kProbeStart,
                   "half-open probe re-admitted tripped snapshot",
                   probe_version);
  CLAPF_LOG(Info) << "half-open probe: re-admitting tripped model v"
                  << probe_version << " for "
                  << options_.breaker.probe_window << " queries";
}

void ModelServer::ResolveProbe(bool recovered, double error_rate) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (tripped_ == nullptr || current_ != tripped_) {
    // A publish replaced the probe snapshot mid-window; its verdict is moot.
    tripped_.reset();
    probe_fallback_.reset();
    return;
  }
  const int64_t probe_version = current_->version;
  if (recovered) {
    // The probed snapshot stays serving and the fallback it displaced
    // becomes the rollback target again — the pre-incident chain restored.
    previous_ = probe_fallback_;
    stats_.RecordProbeRecovery();
    recorder_.Record(FlightEventKind::kProbeRecovered,
                     "probe passed; snapshot reinstated", probe_version,
                     previous_ != nullptr ? previous_->version : 0,
                     error_rate);
    CLAPF_LOG(Info) << "half-open probe passed: model v" << probe_version
                    << " reinstated (error rate " << error_rate << ")";
  } else {
    current_ = probe_fallback_;
    stats_.RecordProbeFailure();
    recorder_.Record(FlightEventKind::kProbeFailed,
                     "probe failed; reverted to fallback", probe_version,
                     current_ != nullptr ? current_->version : 0, error_rate);
    CLAPF_LOG(Warning) << "half-open probe failed: model v" << probe_version
                       << " discarded (error rate " << error_rate << ")";
  }
  tripped_.reset();
  probe_fallback_.reset();
}

Status ModelServer::DumpFlightRecorder(const std::string& path,
                                       const FlightDumpOptions& options) const {
  return recorder_.DumpJsonFile(path, options);
}

int64_t ModelServer::version() const {
  auto snapshot = Acquire();
  return snapshot != nullptr ? snapshot->version : 0;
}

bool ModelServer::degraded() const { return Acquire() == nullptr; }

ServingStatsSnapshot ModelServer::stats() const { return stats_.Snapshot(); }

}  // namespace clapf
