#include "clapf/serving/serving_stats.h"

namespace clapf {

std::string ServingStatsSnapshot::ToString() const {
  std::string out;
  auto field = [&out](const char* name, int64_t value) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  field("queries", queries);
  field("ok", ok);
  field("deadline_exceeded", deadline_exceeded);
  field("shed", shed);
  field("internal_errors", internal_errors);
  field("client_errors", client_errors);
  field("degraded", degraded);
  field("publishes", publishes);
  field("canary_rejects", canary_rejects);
  field("rollbacks", rollbacks);
  field("breaker_trips", breaker_trips);
  return out;
}

ServingStatsSnapshot ServingStats::Snapshot() const {
  ServingStatsSnapshot s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  s.client_errors = client_errors_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.canary_rejects = canary_rejects_.load(std::memory_order_relaxed);
  s.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  s.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace clapf
