#include "clapf/serving/serving_stats.h"

#include "clapf/util/logging.h"

namespace clapf {

std::string ServingStatsSnapshot::ToString() const {
  std::string out;
  auto field = [&out](const char* name, int64_t value) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  field("queries", queries);
  field("ok", ok);
  field("deadline_exceeded", deadline_exceeded);
  field("shed", shed);
  field("internal_errors", internal_errors);
  field("client_errors", client_errors);
  field("degraded", degraded);
  field("publishes", publishes);
  field("canary_rejects", canary_rejects);
  field("rollbacks", rollbacks);
  field("breaker_trips", breaker_trips);
  field("probes", probes);
  field("probe_recoveries", probe_recoveries);
  field("probe_failures", probe_failures);
  return out;
}

std::string ShardStatsSnapshot::ToString() const {
  std::string out;
  auto field = [&out](const char* name, int64_t value) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  field("shard", shard);
  field("queries", queries);
  field("internal_errors", internal_errors);
  field("deadline_exceeded", deadline_exceeded);
  field("degraded", degraded);
  field("publishes", publishes);
  field("canary_rejects", canary_rejects);
  field("rollbacks", rollbacks);
  field("breaker_trips", breaker_trips);
  field("probes", probes);
  field("probe_recoveries", probe_recoveries);
  field("probe_failures", probe_failures);
  return out;
}

std::string ShardedStatsSnapshot::ToString() const {
  std::string out = total.ToString();
  for (const ShardStatsSnapshot& s : shards) {
    out += '\n';
    out += s.ToString();
  }
  return out;
}

ShardServingStats::ShardServingStats(MetricsRegistry* registry, int32_t shard)
    : shard_(shard) {
  CLAPF_CHECK(registry != nullptr);
  CLAPF_CHECK(shard >= 0);
  const std::string prefix = "serving.shard." + std::to_string(shard) + ".";
  queries_ = registry->GetCounter(prefix + "queries_total");
  internal_errors_ = registry->GetCounter(prefix + "internal_errors_total");
  deadline_exceeded_ =
      registry->GetCounter(prefix + "deadline_exceeded_total");
  degraded_ = registry->GetCounter(prefix + "degraded_total");
  publishes_ = registry->GetCounter(prefix + "publishes_total");
  canary_rejects_ = registry->GetCounter(prefix + "canary_rejects_total");
  rollbacks_ = registry->GetCounter(prefix + "rollbacks_total");
  breaker_trips_ = registry->GetCounter(prefix + "breaker_trips_total");
  probes_ = registry->GetCounter(prefix + "halfopen.probes_total");
  probe_recoveries_ =
      registry->GetCounter(prefix + "halfopen.probe_recoveries_total");
  probe_failures_ =
      registry->GetCounter(prefix + "halfopen.probe_failures_total");
}

ShardStatsSnapshot ShardServingStats::Snapshot() const {
  ShardStatsSnapshot s;
  s.shard = shard_;
  s.queries = queries_->Value();
  s.internal_errors = internal_errors_->Value();
  s.deadline_exceeded = deadline_exceeded_->Value();
  s.degraded = degraded_->Value();
  s.publishes = publishes_->Value();
  s.canary_rejects = canary_rejects_->Value();
  s.rollbacks = rollbacks_->Value();
  s.breaker_trips = breaker_trips_->Value();
  s.probes = probes_->Value();
  s.probe_recoveries = probe_recoveries_->Value();
  s.probe_failures = probe_failures_->Value();
  return s;
}

ServingStats::ServingStats(MetricsRegistry* registry) {
  CLAPF_CHECK(registry != nullptr);
  queries_ = registry->GetCounter("serving.queries_total");
  ok_ = registry->GetCounter("serving.ok_total");
  deadline_exceeded_ = registry->GetCounter("serving.deadline_exceeded_total");
  shed_ = registry->GetCounter("serving.shed_total");
  internal_errors_ = registry->GetCounter("serving.internal_errors_total");
  client_errors_ = registry->GetCounter("serving.client_errors_total");
  degraded_ = registry->GetCounter("serving.degraded_total");
  publishes_ = registry->GetCounter("serving.publishes_total");
  canary_rejects_ = registry->GetCounter("serving.canary_rejects_total");
  rollbacks_ = registry->GetCounter("serving.rollbacks_total");
  breaker_trips_ = registry->GetCounter("serving.breaker_trips_total");
  probes_ = registry->GetCounter("serving.halfopen.probes_total");
  probe_recoveries_ =
      registry->GetCounter("serving.halfopen.probe_recoveries_total");
  probe_failures_ =
      registry->GetCounter("serving.halfopen.probe_failures_total");
}

ServingStatsSnapshot ServingStats::Snapshot() const {
  ServingStatsSnapshot s;
  s.queries = queries_->Value();
  s.ok = ok_->Value();
  s.deadline_exceeded = deadline_exceeded_->Value();
  s.shed = shed_->Value();
  s.internal_errors = internal_errors_->Value();
  s.client_errors = client_errors_->Value();
  s.degraded = degraded_->Value();
  s.publishes = publishes_->Value();
  s.canary_rejects = canary_rejects_->Value();
  s.rollbacks = rollbacks_->Value();
  s.breaker_trips = breaker_trips_->Value();
  s.probes = probes_->Value();
  s.probe_recoveries = probe_recoveries_->Value();
  s.probe_failures = probe_failures_->Value();
  return s;
}

}  // namespace clapf
