#ifndef CLAPF_SERVING_MODEL_SERVER_H_
#define CLAPF_SERVING_MODEL_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/obs/metrics.h"
#include "clapf/recommender.h"
#include "clapf/serving/admission_queue.h"
#include "clapf/serving/flight_recorder.h"
#include "clapf/serving/governor.h"
#include "clapf/serving/publish_request.h"
#include "clapf/serving/serving_stats.h"
#include "clapf/util/status.h"

namespace clapf {

/// Validation gate a candidate model must clear before a hot swap.
struct CanaryOptions {
  /// Master switch; disabling skips every pre-publish check except the
  /// dimension match (which is a hard invariant of the serving history).
  bool enabled = true;
  /// Sampled-AUC floor on the held-out probe set; <= 0 skips the probe.
  /// A structurally broken model (corrupt factors, wrong training run)
  /// scores ~0.5 here while any healthy model clears 0.6 comfortably.
  double min_auc = 0.0;
  /// Negatives sampled per probe case (SampledEvaluator protocol).
  int32_t probe_negatives = 20;
  /// Fraction of the serving history re-held-out as the probe set.
  double probe_fraction = 0.1;
  /// Seed for the probe split and negative sampling (deterministic gate).
  uint64_t seed = 1;
  /// Users sampled by the packed-vs-exact agreement check when a packed
  /// snapshot is published (ServerOptions::packed): every item of every
  /// sampled user must agree within PackedScoreBound(). <= 0 skips the
  /// check.
  int32_t packed_agreement_users = 64;

  // ANN half of the gate, only exercised when ServerOptions::ann builds an
  // IVF index per publish. The binding + structural checks (VerifyIvfBinding:
  // the index was built from exactly this candidate's item parameters and
  // its permutation is coherent) always run; the measured check re-ranks
  // `ann_recall_users` sampled users at the index's default nprobe and
  // refuses the publish when recall@`ann_recall_k` vs the exact fused scan
  // falls below `ann_recall_floor`. This is the PackedScoreBound discipline
  // extended into the approximate regime: the contract is measured at the
  // gate, not hoped for.
  /// Measured-recall floor; <= 0 skips the measured check.
  double ann_recall_floor = 0.95;
  /// Users sampled by the recall probe (evenly spaced).
  int32_t ann_recall_users = 16;
  /// The k of the recall@k contract.
  int32_t ann_recall_k = 10;
};

/// Post-publish error-rate circuit breaker. Queries are grouped into
/// tumbling windows; when a full-enough window's internal-error rate
/// crosses the threshold, the server rolls back to the previous snapshot
/// (or degrades to the popularity fallback when none exists).
struct BreakerOptions {
  bool enabled = true;
  /// Queries per evaluation window.
  int64_t window = 64;
  /// Smallest window the breaker will judge — avoids tripping on one
  /// unlucky error at low traffic.
  int64_t min_samples = 16;
  /// Internal-error fraction at which the breaker trips.
  double error_threshold = 0.5;

  // Half-open recovery. After a trip the rolled-back-from snapshot is kept
  // aside; once `cooldown_queries` further queries have been answered by the
  // fallback, it is re-admitted for a `probe_window`-query probe. A probe
  // whose internal-error rate stays below `error_threshold` reinstates the
  // snapshot (no republish needed); a failed probe reverts to the fallback
  // and discards the snapshot for good. Every transition lands in the
  // flight recorder.
  /// Master switch for half-open recovery.
  bool half_open = true;
  /// Queries served by the fallback before a probe window opens.
  int64_t cooldown_queries = 64;
  /// Queries the probe window admits against the tripped snapshot.
  int64_t probe_window = 16;
};

/// ModelServer construction knobs.
struct ServerOptions {
  /// Query worker threads.
  int num_threads = 2;
  /// Admission bound: requests past this many pending-or-running tasks are
  /// shed with Unavailable.
  int64_t max_queue_depth = 64;
  /// Build a packed SIMD snapshot of each published model and serve queries
  /// through the fused score+top-k fast path. The canary gate then also
  /// verifies packed-vs-exact agreement (CanaryOptions::
  /// packed_agreement_users) and runs its AUC probe through the packed
  /// kernels, so what is vetted is what serves. Disable to serve the exact
  /// double path only.
  bool packed = true;
  /// Build an IVF approximate-MIPS index alongside each published packed
  /// snapshot (requires `packed`) and canary-verify it (binding + measured
  /// recall@k, CanaryOptions::ann_recall_*) before adoption, so queries
  /// opting in with QueryOptions::ann take the sub-linear probe + re-rank
  /// path. When the previous snapshot carries a compatible index the
  /// publish rebuilds incrementally: frozen centroids, only items whose
  /// parameters changed are reassigned (the online incremental-publish
  /// path). Off by default: index builds cost a k-means pass per publish.
  bool ann = false;
  /// Index build knobs when `ann` is set. With `ivf.pq` on, each publish
  /// additionally trains/refreshes the per-lane int8 code book next to the
  /// repack and the canary gate measures the *composed* quantized+re-rank
  /// recall instead of the probe-only recall (same floor) — queries opt in
  /// per request with QueryOptions::pq.
  IvfOptions ivf;
  CanaryOptions canary;
  BreakerOptions breaker;
  /// Adaptive knob control (policy, bounds, tick cadence); the default
  /// `performance` policy reproduces the static pre-governor behavior.
  GovernorOptions governor;
  /// Events retained by the incident flight recorder (rounded up to a power
  /// of two).
  int64_t flight_recorder_capacity = 256;
  /// When non-empty, the flight recorder is dumped (JSON, atomic write) to
  /// this path every time the circuit breaker trips — the post-incident
  /// black box is on disk before anyone asks for it.
  std::string flight_dump_path;
  /// Queries served slower than this many microseconds are recorded in the
  /// flight recorder as slow-query events; 0 disables.
  int64_t slow_query_us = 0;

  // Sharded serving (ShardedModelServer only; ModelServer ignores these).
  /// Contiguous catalog shards, each with its own slice, packed snapshot,
  /// breaker, and flight recorder. Clamped to [1, ceil(num_items / 8)].
  int32_t num_shards = 1;
  /// Scatter worker threads fanning one query across shards; 0 picks
  /// min(num_shards, 4). Irrelevant when num_shards == 1 (inline scoring).
  int scatter_threads = 0;
  /// Per-tenant in-flight admission budget; <= 0 disables tenant quotas
  /// (the global max_queue_depth bound always applies).
  int64_t per_tenant_quota = 0;
};

/// Always-on serving front end: owns the interaction history, a worker pool
/// behind a bounded admission queue, and an RCU-style snapshot of the
/// currently served model that training can hot-swap while queries run.
///
/// Lifecycle of a model version:
///   Publish(candidate) → canary gate (finite scan + wire-format/CRC
///   round-trip + optional sampled-AUC floor) → atomic snapshot swap.
/// A failed gate leaves the prior snapshot serving untouched. After a
/// publish, a serve-time integrity check (non-finite top-k scores surface
/// as Internal) feeds the circuit breaker; a tripped breaker rolls back to
/// the previous snapshot, or — when no valid snapshot exists — degrades to
/// the popularity fallback rather than going dark.
///
/// Readers copy a shared_ptr under a mutex held for nanoseconds, then score
/// entirely lock-free on their private snapshot; publishes swap the pointer
/// under the same mutex, so an in-flight query keeps its model alive until
/// it finishes (grace period by refcount — the RCU pattern).
///
/// Thread-safe: queries, publishes, and stats reads may run concurrently.
class ModelServer {
 public:
  /// Serves against `history` (copied); starts with no model published, so
  /// queries are answered by the popularity fallback until the first
  /// successful Publish.
  ModelServer(Dataset history, const ServerOptions& options);

  /// Stops the governor ticker thread and drains in-flight queries.
  ~ModelServer();

  /// The unified publish entry point: resolves `request` (an in-memory
  /// candidate or a CRC-verified model file — the implicit PublishRequest
  /// conversions make `PublishModel(model)` and `PublishModel(path)` read
  /// like the calls they replaced), gates it, and on success atomically
  /// swaps it in as the new serving snapshot. On gate failure
  /// (InvalidArgument / Corruption / FailedPrecondition) the previous
  /// snapshot keeps serving. This server is single-shard and
  /// single-tenant: a request targeting any shard but kAllShards/0 or any
  /// tenant but kDefaultTenant is refused — route those to
  /// ShardedModelServer.
  Status PublishModel(PublishRequest request);

  /// Top-k for one user through admission control on the serving pool.
  /// Outcomes: the ranked list, DeadlineExceeded (options.deadline expired),
  /// Unavailable (shed at admission), OutOfRange (bad id), or Internal
  /// (served-model integrity failure — breaker food).
  Result<std::vector<ScoredItem>> Recommend(UserId u, size_t k,
                                            const QueryOptions& options = {});

  /// Batched query as one admitted unit of work; parallelism is across
  /// requests (the pool), not within a batch. An expired deadline returns
  /// the completed prefix with the rest flagged, per RecommendBatchPartial.
  Result<BatchReply> RecommendBatch(std::span<const UserId> users, size_t k,
                                    const QueryOptions& options = {});

  /// Version of the snapshot currently serving; 0 when none (degraded).
  int64_t version() const;

  /// True while queries are answered by the popularity fallback because no
  /// valid model snapshot exists.
  bool degraded() const;

  /// Point-in-time copy of all serving counters.
  ServingStatsSnapshot stats() const;

  /// The server's metrics registry: every serving counter plus the
  /// serving.query.latency_us / serving.batch.latency_us histograms and the
  /// admission/ranker instrumentation. Snapshot or export it to scrape the
  /// server (see ExportPrometheusText / WriteMetricsJsonFile).
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry* mutable_metrics() { return &metrics_; }

  /// The incident flight recorder: every degradation decision (governor
  /// adjustments, sheds, deadline misses, breaker trips, probes) lands here
  /// and can be dumped at any time — automatically on a breaker trip when
  /// ServerOptions::flight_dump_path is set.
  const FlightRecorder& flight_recorder() const { return recorder_; }

  /// Dumps the flight recorder as JSON to `path` (atomic write).
  Status DumpFlightRecorder(const std::string& path,
                            const FlightDumpOptions& options = {}) const;

  /// The serving governor (never null). Its knobs() are the live values; in
  /// drills, drive the control loop deterministically with TickGovernor().
  const ServingGovernor& governor() const { return *governor_; }

  /// One manual governor control step (see ServingGovernor::Tick).
  void TickGovernor() { governor_->Tick(); }

  const Dataset& history() const { return history_; }

 private:
  struct Snapshot {
    int64_t version;
    Recommender recommender;
  };

  /// Gate + swap for a resolved in-memory candidate (the tail of every
  /// PublishModel call).
  Status PublishCandidate(FactorModel candidate);

  /// Pre-publish validation; `context` names the candidate in errors.
  /// `packed` is the candidate's freshly built snapshot (null when packed
  /// serving is off): the gate verifies its agreement with the exact model
  /// and routes the AUC probe through it.
  Status GateCandidate(const FactorModel& candidate,
                       const PackedSnapshot* packed,
                       const std::string& context) const;

  /// The RCU read: copy the current snapshot pointer (may be null).
  std::shared_ptr<const Snapshot> Acquire() const;

  /// Runs on a pool worker: snapshot read + query + serve-time checks.
  Result<std::vector<ScoredItem>> ServeOne(UserId u, size_t k,
                                           const QueryOptions& options);
  Result<BatchReply> ServeBatch(std::span<const UserId> users, size_t k,
                                const QueryOptions& options);

  /// Popularity ranking with history/option exclusions — the no-snapshot
  /// fallback path.
  Result<std::vector<ScoredItem>> ServeDegraded(
      UserId u, size_t k, const QueryOptions& options) const;

  /// Stats + breaker accounting for one finished query, including the
  /// half-open recovery state machine (closed → cooldown → half-open).
  void RecordOutcome(const Status& status);

  /// Breaker action: revert to the previous snapshot or degrade, keep the
  /// rolled-back-from snapshot aside for a later probe, and auto-dump the
  /// flight recorder when configured.
  void TripBreaker();

  /// Half-open transitions (called off the breaker lock, take snapshot_mu_).
  void BeginProbe();
  void ResolveProbe(bool recovered, double error_rate);

  Dataset history_;
  std::vector<double> popularity_;  // fallback scores, index = item id
  ServerOptions options_;
  Dataset probe_train_;  // canary probe split of the history
  Dataset probe_test_;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> current_;   // null until first publish
  std::shared_ptr<const Snapshot> previous_;  // breaker rollback target
  int64_t next_version_ = 1;

  // Kept aside for half-open recovery, guarded by snapshot_mu_ like the
  // serving chain itself. `tripped_` is the snapshot the breaker rolled back
  // from (probe candidate); `probe_fallback_` is what `current_` pointed at
  // before the probe swapped the candidate back in (revert target).
  std::shared_ptr<const Snapshot> tripped_;
  std::shared_ptr<const Snapshot> probe_fallback_;

  /// Tumbling-window breaker phase. kClosed judges full windows and trips;
  /// kCooldown counts queries toward the probe; kHalfOpen judges the probe
  /// window against the re-admitted snapshot.
  enum class BreakerState { kClosed, kCooldown, kHalfOpen };

  std::mutex breaker_mu_;
  int64_t window_queries_ = 0;
  int64_t window_errors_ = 0;
  BreakerState breaker_state_ = BreakerState::kClosed;
  int64_t cooldown_left_ = 0;    // queries until the probe opens
  int64_t probe_left_ = 0;       // queries left in the probe window
  int64_t probe_errors_ = 0;     // internal errors seen during the probe

  // Declared before queue_/stats_/the latency handles: they are all views
  // into this registry and member construction follows declaration order.
  MetricsRegistry metrics_;
  Histogram* query_latency_;  // serving.query.latency_us
  Histogram* batch_latency_;  // serving.batch.latency_us
  FlightRecorder recorder_;   // before queue_: workers record into it
  AdmissionQueue queue_;
  ServingStats stats_;
  // Last: observes metrics_/queue_/recorder_, so it must die first and the
  // ticker thread it owns must never outlive them.
  std::unique_ptr<ServingGovernor> governor_;
};

}  // namespace clapf

#endif  // CLAPF_SERVING_MODEL_SERVER_H_
