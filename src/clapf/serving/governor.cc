#include "clapf/serving/governor.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "clapf/util/string_util.h"

namespace clapf {

const char* GovernorPolicyName(GovernorPolicy policy) {
  switch (policy) {
    case GovernorPolicy::kPerformance: return "performance";
    case GovernorPolicy::kOndemand: return "ondemand";
    case GovernorPolicy::kSchedutil: return "schedutil";
  }
  return "unknown";
}

Result<GovernorPolicy> ParseGovernorPolicy(const std::string& name) {
  const std::string key = ToLower(name);
  if (key == "performance") return GovernorPolicy::kPerformance;
  if (key == "ondemand") return GovernorPolicy::kOndemand;
  if (key == "schedutil") return GovernorPolicy::kSchedutil;
  return Status::InvalidArgument(
      "unknown governor policy: " + name +
      " (want performance|ondemand|schedutil)");
}

HistogramSnapshot HistogramDelta(const HistogramSnapshot& prev,
                                 const HistogramSnapshot& cur) {
  HistogramSnapshot delta = cur;
  if (prev.counts.size() == cur.counts.size()) {
    for (size_t i = 0; i < delta.counts.size(); ++i) {
      delta.counts[i] -= prev.counts[i];
    }
    delta.count -= prev.count;
    delta.sum -= prev.sum;
  }
  return delta;
}

double HistogramQuantileUpperBound(const HistogramSnapshot& snapshot,
                                   double q) {
  if (snapshot.count <= 0 || snapshot.bounds.empty()) return -1.0;
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * snapshot.count)));
  int64_t seen = 0;
  for (size_t b = 0; b < snapshot.counts.size(); ++b) {
    seen += snapshot.counts[b];
    if (seen >= rank) {
      // Overflow bucket: no finite upper bound exists; report twice the last
      // finite bound as a pessimistic-but-usable estimate.
      if (b >= snapshot.bounds.size()) return snapshot.bounds.back() * 2.0;
      return snapshot.bounds[b];
    }
  }
  return snapshot.bounds.back() * 2.0;
}

ServingGovernor::ServingGovernor(const GovernorOptions& options,
                                 int64_t initial_queue_depth,
                                 MetricsRegistry* metrics,
                                 AdmissionQueue* queue,
                                 FlightRecorder* recorder)
    : options_(options),
      metrics_(metrics),
      queue_(queue),
      recorder_(recorder),
      queries_in_(metrics->GetCounter("serving.queries_total")),
      sheds_in_(metrics->GetCounter("serving.shed_total")),
      misses_in_(metrics->GetCounter("serving.deadline_exceeded_total")),
      internal_in_(metrics->GetCounter("serving.internal_errors_total")),
      trips_in_(metrics->GetCounter("serving.breaker_trips_total")),
      latency_in_(metrics->GetHistogram("serving.query.latency_us",
                                        LatencyBucketsUs())),
      queue_depth_gauge_(metrics->GetGauge("serving.governor.queue_depth")),
      deadline_budget_gauge_(
          metrics->GetGauge("serving.governor.deadline_budget_us")),
      force_packed_gauge_(metrics->GetGauge("serving.governor.force_packed")),
      ticks_(metrics->GetCounter("serving.governor.ticks_total")),
      adjustments_(metrics->GetCounter("serving.governor.adjustments_total")) {
  GovernorKnobBounds& b = options_.bounds;
  if (b.max_queue_depth <= 0) b.max_queue_depth = initial_queue_depth;
  b.min_queue_depth = std::clamp<int64_t>(b.min_queue_depth, 1,
                                          b.max_queue_depth);
  if (b.max_deadline_budget_us > 0 &&
      b.min_deadline_budget_us > b.max_deadline_budget_us) {
    b.min_deadline_budget_us = b.max_deadline_budget_us;
  }
  // Knobs start at rest — with the performance policy they stay there, which
  // is byte-for-byte the pre-governor static configuration.
  knob_queue_depth_.store(rest_queue_depth(), std::memory_order_relaxed);
  knob_deadline_budget_us_.store(rest_deadline_budget_us(),
                                 std::memory_order_relaxed);
  queue_depth_gauge_->Set(static_cast<double>(rest_queue_depth()));
  deadline_budget_gauge_->Set(static_cast<double>(rest_deadline_budget_us()));
  force_packed_gauge_->Set(0.0);
  prev_latency_ = latency_in_->Snapshot();
}

ServingGovernor::~ServingGovernor() { Stop(); }

void ServingGovernor::Start() {
  if (options_.policy == GovernorPolicy::kPerformance) return;
  if (options_.interval_us <= 0) return;
  std::lock_guard<std::mutex> lock(ticker_mu_);
  if (ticker_.joinable()) return;
  ticker_stop_ = false;
  ticker_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(ticker_mu_);
    while (!ticker_stop_) {
      ticker_cv_.wait_for(lock,
                          std::chrono::microseconds(options_.interval_us));
      if (ticker_stop_) break;
      lock.unlock();
      Tick();
      lock.lock();
    }
  });
}

void ServingGovernor::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    if (!ticker_.joinable()) return;
    ticker_stop_ = true;
    ticker_cv_.notify_all();
    to_join = std::move(ticker_);
  }
  to_join.join();
}

GovernorKnobs ServingGovernor::knobs() const {
  GovernorKnobs k;
  k.max_queue_depth = knob_queue_depth_.load(std::memory_order_relaxed);
  k.deadline_budget_us =
      knob_deadline_budget_us_.load(std::memory_order_relaxed);
  k.force_packed = knob_force_packed_.load(std::memory_order_relaxed);
  return k;
}

void ServingGovernor::ApplyToQuery(QueryOptions* options) const {
  if (knob_force_packed_.load(std::memory_order_relaxed)) {
    options->use_packed = true;
  }
  const int64_t budget =
      knob_deadline_budget_us_.load(std::memory_order_relaxed);
  if (budget > 0 &&
      (options->deadline.count() <= 0 ||
       options->deadline > std::chrono::microseconds(budget))) {
    options->deadline = std::chrono::microseconds(budget);
  }
}

ServingGovernor::Inputs ServingGovernor::ReadInputs() {
  Inputs in;
  in.queue_depth = queue_->depth();
  const int64_t queries = queries_in_->Value();
  const int64_t sheds = sheds_in_->Value();
  const int64_t misses = misses_in_->Value();
  const int64_t internal = internal_in_->Value();
  const int64_t trips = trips_in_->Value();
  in.queries_delta = queries - prev_queries_;
  in.sheds_delta = sheds - prev_sheds_;
  in.misses_delta = misses - prev_misses_;
  in.internal_delta = internal - prev_internal_;
  in.trips_delta = trips - prev_trips_;
  prev_queries_ = queries;
  prev_sheds_ = sheds;
  prev_misses_ = misses;
  prev_internal_ = internal;
  prev_trips_ = trips;

  HistogramSnapshot cur = latency_in_->Snapshot();
  in.p99_us = HistogramQuantileUpperBound(HistogramDelta(prev_latency_, cur),
                                          0.99);
  prev_latency_ = std::move(cur);
  return in;
}

void ServingGovernor::SetQueueDepth(int64_t depth, const char* why) {
  const GovernorKnobBounds& b = options_.bounds;
  depth = std::clamp(depth, b.min_queue_depth, b.max_queue_depth);
  const int64_t old = knob_queue_depth_.load(std::memory_order_relaxed);
  if (depth == old) return;
  knob_queue_depth_.store(depth, std::memory_order_relaxed);
  queue_->set_max_depth(depth);
  queue_depth_gauge_->Set(static_cast<double>(depth));
  adjustments_->Inc();
  recorder_->Record(FlightEventKind::kGovernorAdjust,
                    std::string("queue_depth ") + why, old, depth);
}

void ServingGovernor::SetDeadlineBudget(int64_t budget_us, const char* why) {
  const GovernorKnobBounds& b = options_.bounds;
  // 0 is the "no cap" rest value and only legal when the bounds rest there;
  // any finite budget is clamped into [min, max-or-infinity].
  if (budget_us != 0 || b.max_deadline_budget_us != 0) {
    budget_us = std::max(budget_us, b.min_deadline_budget_us);
    if (b.max_deadline_budget_us > 0) {
      budget_us = std::min(budget_us, b.max_deadline_budget_us);
    }
  }
  const int64_t old =
      knob_deadline_budget_us_.load(std::memory_order_relaxed);
  if (budget_us == old) return;
  knob_deadline_budget_us_.store(budget_us, std::memory_order_relaxed);
  deadline_budget_gauge_->Set(static_cast<double>(budget_us));
  adjustments_->Inc();
  recorder_->Record(FlightEventKind::kGovernorAdjust,
                    std::string("deadline_budget_us ") + why, old, budget_us);
}

void ServingGovernor::SetForcePacked(bool on, const char* why) {
  const bool old = knob_force_packed_.load(std::memory_order_relaxed);
  if (on == old) return;
  knob_force_packed_.store(on, std::memory_order_relaxed);
  force_packed_gauge_->Set(on ? 1.0 : 0.0);
  adjustments_->Inc();
  recorder_->Record(FlightEventKind::kGovernorAdjust,
                    std::string("force_packed ") + why, old ? 1 : 0,
                    on ? 1 : 0);
}

void ServingGovernor::RelaxOneStep(const char* why) {
  const GovernorKnobBounds& b = options_.bounds;
  const int64_t depth = knob_queue_depth_.load(std::memory_order_relaxed);
  if (depth < b.max_queue_depth) {
    SetQueueDepth(std::min(b.max_queue_depth, depth * 2), why);
    return;
  }
  const int64_t budget =
      knob_deadline_budget_us_.load(std::memory_order_relaxed);
  if (budget != rest_deadline_budget_us()) {
    int64_t next = budget * 2;
    // An unbounded rest value is reached by doubling out the top: past 2^20
    // us (~1s) a cap is indistinguishable from none, so release it.
    if (rest_deadline_budget_us() == 0) {
      if (next >= (int64_t{1} << 20)) next = 0;
    } else {
      next = std::min(next, rest_deadline_budget_us());
    }
    SetDeadlineBudget(next, why);
    return;
  }
  SetForcePacked(false, why);
}

void ServingGovernor::TickOndemand(const Inputs& in) {
  const int64_t depth_bound =
      knob_queue_depth_.load(std::memory_order_relaxed);
  const double utilization =
      depth_bound > 0
          ? static_cast<double>(in.queue_depth) / static_cast<double>(depth_bound)
          : 0.0;
  const double miss_rate =
      in.queries_delta > 0
          ? static_cast<double>(in.misses_delta) /
                static_cast<double>(in.queries_delta)
          : 0.0;
  const bool pressure = utilization >= options_.queue_high_watermark ||
                        in.sheds_delta > 0 || in.trips_delta > 0 ||
                        miss_rate >= options_.miss_rate_high_watermark;
  if (pressure) {
    // Step every knob to its defensive bound at once: shed early (bounded
    // queueing latency), cap per-query budgets (bounded tail), and serve
    // the cheap packed path. Aggressive up, slow down — the ondemand shape.
    calm_ticks_ = 0;
    SetForcePacked(true, "pressure");
    SetDeadlineBudget(options_.bounds.min_deadline_budget_us, "pressure");
    SetQueueDepth(options_.bounds.min_queue_depth, "pressure");
    return;
  }
  if (++calm_ticks_ >= options_.decay_ticks) {
    calm_ticks_ = 0;
    RelaxOneStep("decay");
  }
}

void ServingGovernor::TickSchedutil(const Inputs& in) {
  const int64_t target_us =
      std::max<int64_t>(1, static_cast<int64_t>(
                               options_.latency_target_ms * 1000.0));
  if (in.p99_us < 0.0) {
    // No latency samples since the last tick: traffic is idle, drift back
    // toward rest so a past overload's clamps do not outlive the overload.
    if (++calm_ticks_ >= options_.decay_ticks) {
      calm_ticks_ = 0;
      RelaxOneStep("idle");
    }
    return;
  }
  calm_ticks_ = 0;
  const double err =
      (in.p99_us - static_cast<double>(target_us)) /
      static_cast<double>(target_us);
  const int64_t depth = knob_queue_depth_.load(std::memory_order_relaxed);
  if (err > 0.0) {
    // Over target: admission is the dominant latency lever (queueing), so
    // shrink it proportionally; cap budgets near the target so one slow
    // query cannot blow the tail; prefer the packed path when far over.
    const double step = std::min(err, 1.0) * options_.proportional_gain;
    const int64_t next =
        depth - std::max<int64_t>(1, static_cast<int64_t>(
                                         std::llround(depth * step)));
    SetQueueDepth(next, "over-target");
    SetDeadlineBudget(2 * target_us, "over-target");
    if (err > 0.5) SetForcePacked(true, "over-target");
  } else {
    const double step = std::min(-err, 1.0) * options_.proportional_gain;
    const int64_t next =
        depth + std::max<int64_t>(1, static_cast<int64_t>(
                                         std::llround(depth * step)));
    SetQueueDepth(next, "under-target");
    if (err < -0.5) {
      SetDeadlineBudget(rest_deadline_budget_us(), "under-target");
      SetForcePacked(false, "under-target");
    }
  }
}

void ServingGovernor::Tick() {
  std::lock_guard<std::mutex> lock(tick_mu_);
  ticks_->Inc();
  const Inputs in = ReadInputs();
  switch (options_.policy) {
    case GovernorPolicy::kPerformance:
      break;  // static by definition
    case GovernorPolicy::kOndemand:
      TickOndemand(in);
      break;
    case GovernorPolicy::kSchedutil:
      TickSchedutil(in);
      break;
  }
}

}  // namespace clapf
