#ifndef CLAPF_CLAPF_H_
#define CLAPF_CLAPF_H_

/// Umbrella header: the full public API of the CLAPF library.
///
/// Quickstart:
///   clapf::SyntheticConfig cfg = clapf::PresetConfig(
///       clapf::DatasetPreset::kMl100k);
///   clapf::Dataset data = *clapf::GenerateSynthetic(cfg);
///   auto split = clapf::SplitRandom(data, 0.5, /*seed=*/1);
///   clapf::ClapfOptions opts;        // CLAPF-MAP, uniform sampler
///   clapf::ClapfTrainer trainer(opts);
///   CLAPF_CHECK_OK(trainer.Train(split.train));
///   clapf::Evaluator eval(&split.train, &split.test);
///   auto summary = eval.Evaluate(*trainer.model(), clapf::PaperCutoffs());

#include "clapf/baselines/bpr.h"
#include "clapf/baselines/climf.h"
#include "clapf/baselines/ease.h"
#include "clapf/baselines/gbpr.h"
#include "clapf/baselines/deep_icf.h"
#include "clapf/baselines/item_knn.h"
#include "clapf/baselines/mpr.h"
#include "clapf/baselines/neu_mf.h"
#include "clapf/baselines/neu_pr.h"
#include "clapf/baselines/pop_rank.h"
#include "clapf/baselines/random_walk.h"
#include "clapf/baselines/wmf.h"
#include "clapf/core/checkpoint.h"
#include "clapf/core/clapf_trainer.h"
#include "clapf/core/divergence_guard.h"
#include "clapf/core/model_selection.h"
#include "clapf/core/ranker.h"
#include "clapf/core/sgd_executor.h"
#include "clapf/core/smoothing.h"
#include "clapf/core/trainer.h"
#include "clapf/core/trainer_factory.h"
#include "clapf/data/dataset.h"
#include "clapf/data/dataset_builder.h"
#include "clapf/data/dataset_io.h"
#include "clapf/data/loader.h"
#include "clapf/data/split.h"
#include "clapf/data/statistics.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/beyond_accuracy.h"
#include "clapf/eval/evaluator.h"
#include "clapf/eval/sampled_evaluator.h"
#include "clapf/eval/significance.h"
#include "clapf/eval/stratified.h"
#include "clapf/eval/oracle.h"
#include "clapf/eval/protocol.h"
#include "clapf/eval/ranking_metrics.h"
#include "clapf/model/factor_model.h"
#include "clapf/model/model_io.h"
#include "clapf/model/packed_snapshot.h"
#include "clapf/model/score_kernel.h"
#include "clapf/obs/exporter.h"
#include "clapf/obs/metrics.h"
#include "clapf/obs/trace_span.h"
#include "clapf/online/continuous_deployer.h"
#include "clapf/online/online_trainer.h"
#include "clapf/online/wal.h"
#include "clapf/recommender.h"
#include "clapf/sampling/abs_sampler.h"
#include "clapf/sampling/alias.h"
#include "clapf/sampling/aobpr_sampler.h"
#include "clapf/sampling/dns_sampler.h"
#include "clapf/sampling/dss_sampler.h"
#include "clapf/sampling/sampler.h"
#include "clapf/sampling/uniform_sampler.h"
#include "clapf/serving/admission_queue.h"
#include "clapf/serving/flight_recorder.h"
#include "clapf/serving/governor.h"
#include "clapf/serving/model_server.h"
#include "clapf/serving/model_shard.h"
#include "clapf/serving/publish_request.h"
#include "clapf/serving/serving_stats.h"
#include "clapf/serving/shard_map.h"
#include "clapf/serving/sharded_server.h"
#include "clapf/util/crc32.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/fs.h"
#include "clapf/util/logging.h"
#include "clapf/util/status.h"
#include "clapf/util/stopwatch.h"

#endif  // CLAPF_CLAPF_H_
