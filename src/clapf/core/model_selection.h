#ifndef CLAPF_CORE_MODEL_SELECTION_H_
#define CLAPF_CORE_MODEL_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clapf/core/clapf_trainer.h"
#include "clapf/data/dataset.h"
#include "clapf/util/status.h"

namespace clapf {

/// The validation metric a selection optimizes. The paper selects every
/// hyper-parameter by NDCG@5 on a one-pair-per-user validation split (§6.3).
enum class SelectionMetric { kNdcgAt5, kMap, kMrr, kPrecisionAt5 };

/// One evaluated candidate.
struct CandidateResult {
  ClapfOptions options;
  double validation_score = 0.0;
};

/// Outcome of a grid search.
struct SelectionResult {
  /// Index of the winner in the candidate list.
  size_t best_index = 0;
  /// The winning configuration (copy of candidates[best_index]).
  ClapfOptions best_options;
  /// Every candidate with its validation score, in input order.
  std::vector<CandidateResult> trials;
};

/// Evaluates each candidate CLAPF configuration on a one-pair-per-user
/// validation split carved out of `train` and returns the best by `metric`.
/// Deterministic given `seed`. Returns InvalidArgument for an empty
/// candidate list, FailedPrecondition when no validation pair can be held
/// out.
Result<SelectionResult> SelectClapfOptions(
    const Dataset& train, const std::vector<ClapfOptions>& candidates,
    SelectionMetric metric, uint64_t seed);

/// Convenience: sweeps λ over `lambdas` with everything else from `base`
/// (the paper's λ selection protocol).
Result<SelectionResult> SelectLambda(const Dataset& train,
                                     const ClapfOptions& base,
                                     const std::vector<double>& lambdas,
                                     SelectionMetric metric, uint64_t seed);

/// Convenience: sweeps the SGD iteration budget T (the paper's
/// T ∈ {1e3, 1e4, 1e5} protocol).
Result<SelectionResult> SelectIterations(
    const Dataset& train, const ClapfOptions& base,
    const std::vector<int64_t>& iteration_grid, SelectionMetric metric,
    uint64_t seed);

/// Human-readable metric name.
const char* SelectionMetricName(SelectionMetric metric);

}  // namespace clapf

#endif  // CLAPF_CORE_MODEL_SELECTION_H_
