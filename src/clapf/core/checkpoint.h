#ifndef CLAPF_CORE_CHECKPOINT_H_
#define CLAPF_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clapf/model/factor_model.h"
#include "clapf/util/status.h"

namespace clapf {

/// Periodic-snapshot configuration for SGD training runs.
struct CheckpointOptions {
  /// Directory that holds checkpoint files and the MANIFEST. Empty disables
  /// checkpointing entirely.
  std::string dir;
  /// Iterations between snapshots; <= 0 disables checkpointing.
  int64_t interval = 0;
  /// Newest checkpoints retained on disk; older ones are pruned.
  int32_t keep_last = 3;
  /// When true, Train() restarts from the newest valid checkpoint in `dir`
  /// (matching seed and dimensions) instead of from scratch.
  bool resume = true;
};

/// Trainer state captured alongside the model so a resumed run continues the
/// schedule exactly where the crashed run left off.
struct TrainerCheckpointState {
  /// SGD iterations completed when the snapshot was taken.
  int64_t iteration = 0;
  /// Seed of the run; a resume with a different seed ignores the checkpoint.
  uint64_t seed = 0;
  /// DivergenceGuard backoff state.
  double lr_scale = 1.0;
  int32_t guard_retries = 0;
  /// Running loss accumulators (diagnostics continuity across resume).
  double loss_acc = 0.0;
  int64_t loss_count = 0;
};

/// A checkpoint read back from disk.
struct LoadedCheckpoint {
  FactorModel model;
  TrainerCheckpointState state;
};

/// Writes and recovers training checkpoints, RocksDB-style: every snapshot
/// is serialized with CRC protection, published via write-to-temp + fsync +
/// atomic rename, and recorded in an atomically rewritten MANIFEST. Recovery
/// walks the manifest newest-first and returns the first checkpoint that
/// passes validation, so a torn or bit-flipped snapshot is skipped rather
/// than trusted.
class CheckpointManager {
 public:
  explicit CheckpointManager(const CheckpointOptions& options);

  /// True when both a directory and a positive interval are configured.
  bool enabled() const {
    return !options_.dir.empty() && options_.interval > 0;
  }

  /// Creates the directory if needed and loads the manifest. Must be called
  /// before Write/LoadLatest. No-op when disabled.
  Status Init();

  /// Durably writes one checkpoint, appends it to the manifest, and prunes
  /// checkpoints beyond `keep_last`.
  Status Write(const FactorModel& model, const TrainerCheckpointState& state);

  /// Newest checkpoint that deserializes cleanly and passes its CRCs.
  /// Invalid entries are skipped with a warning. NotFound when none survive.
  Result<LoadedCheckpoint> LoadLatest() const;

  /// Parses one checkpoint file; Corruption when torn or checksum-damaged.
  static Result<LoadedCheckpoint> ReadCheckpointFile(const std::string& path);

  /// Manifest entries, oldest first (file names relative to `dir`).
  const std::vector<std::string>& entries() const { return entries_; }

  const CheckpointOptions& options() const { return options_; }

 private:
  Status WriteManifest() const;
  void Prune();

  CheckpointOptions options_;
  std::vector<std::string> entries_;
};

}  // namespace clapf

#endif  // CLAPF_CORE_CHECKPOINT_H_
