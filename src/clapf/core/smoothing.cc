#include "clapf/core/smoothing.h"

#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

double SmoothedReciprocalRank(const FactorModel& model, const Dataset& data,
                              UserId u) {
  auto items = data.ItemsOf(u);
  double rr = 0.0;
  for (ItemId i : items) {
    const double f_ui = model.Score(u, i);
    double prod = Sigmoid(f_ui);
    for (ItemId k : items) {
      prod *= 1.0 - Sigmoid(model.Score(u, k) - f_ui);
    }
    rr += prod;
  }
  return rr;
}

double SmoothedAveragePrecision(const FactorModel& model, const Dataset& data,
                                UserId u) {
  auto items = data.ItemsOf(u);
  if (items.empty()) return 0.0;
  double ap = 0.0;
  for (ItemId i : items) {
    const double f_ui = model.Score(u, i);
    double inner = 0.0;
    for (ItemId k : items) {
      inner += Sigmoid(model.Score(u, k) - f_ui);
    }
    ap += Sigmoid(f_ui) * inner;
  }
  return ap / static_cast<double>(items.size());
}

double ClimfLowerBound(const FactorModel& model, const Dataset& data,
                       UserId u) {
  auto items = data.ItemsOf(u);
  double total = 0.0;
  for (ItemId i : items) {
    const double f_ui = model.Score(u, i);
    total += LogSigmoid(f_ui);
    for (ItemId k : items) {
      if (k == i) continue;
      total += LogSigmoid(f_ui - model.Score(u, k));
    }
  }
  return total;
}

double MapLowerBound(const FactorModel& model, const Dataset& data, UserId u) {
  auto items = data.ItemsOf(u);
  double total = 0.0;
  for (ItemId i : items) {
    const double f_ui = model.Score(u, i);
    total += LogSigmoid(f_ui);
    for (ItemId k : items) {
      if (k == i) continue;
      total += LogSigmoid(model.Score(u, k) - f_ui);
    }
  }
  return total;
}

double ClapfMargin(ClapfVariant variant, double lambda, double f_ui,
                   double f_uk, double f_uj) {
  if (variant == ClapfVariant::kMap) {
    return lambda * (f_uk - f_ui) + (1.0 - lambda) * (f_ui - f_uj);
  }
  // kMrr and kNdcg share the margin; kNdcg adds a rank-discount weight at
  // the gradient level (see ClapfTrainer).
  return lambda * (f_ui - f_uk) + (1.0 - lambda) * (f_ui - f_uj);
}

double ClapfTripleLoss(ClapfVariant variant, double lambda, double f_ui,
                       double f_uk, double f_uj) {
  return -LogSigmoid(ClapfMargin(variant, lambda, f_ui, f_uk, f_uj));
}

double ExactClapfLogLikelihood(const FactorModel& model, const Dataset& data,
                               ClapfVariant variant, double lambda) {
  double total = 0.0;
  const int32_t m = data.num_items();
  for (UserId u = 0; u < data.num_users(); ++u) {
    auto items = data.ItemsOf(u);
    for (ItemId i : items) {
      const double f_ui = model.Score(u, i);
      for (ItemId k : items) {
        const double f_uk = model.Score(u, k);
        for (ItemId j = 0; j < m; ++j) {
          if (data.IsObserved(u, j)) continue;
          total += LogSigmoid(
              ClapfMargin(variant, lambda, f_ui, f_uk, model.Score(u, j)));
        }
      }
    }
  }
  return total;
}

}  // namespace clapf
