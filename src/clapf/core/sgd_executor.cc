#include "clapf/core/sgd_executor.h"

#include <algorithm>
#include <barrier>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"

namespace clapf {

namespace {

// Iterations a worker claims from the shared counter at a time. Large enough
// that the fetch_add is negligible against ~100ns SGD steps, small enough
// that workers finish a round within a chunk of each other.
constexpr int64_t kClaimChunk = 64;

// The exact legacy trainer loop: schedule, sample, fault injection, guard
// observation, update, probe, checkpoint. Every expression matches the
// pre-executor trainers so serial training is bit-identical.
Status RunSerial(const SgdExecutorConfig& config, FactorModel* model,
                 const SgdExecutor::WorkerFactory& make_worker,
                 const SgdExecutor::ProbeFn& probe,
                 const SgdExecutor::CheckpointFn& checkpoint) {
  std::unique_ptr<SgdWorker> worker = make_worker(0, 1);
  CLAPF_CHECK(worker != nullptr);

  DivergenceGuard guard(config.divergence, model);
  guard.RestoreBackoff(config.initial_lr_scale, config.initial_guard_retries);
  FaultInjector& faults = FaultInjector::Instance();

  const double lr0 = config.learning_rate;
  const double lr1 = lr0 * config.final_learning_rate_fraction;
  const double total = static_cast<double>(config.iterations);

  for (int64_t it = config.start_iteration; it <= config.iterations; ++it) {
    const double lr =
        (lr0 + (lr1 - lr0) * (static_cast<double>(it - 1) / total)) *
        guard.lr_scale();
    double margin = worker->PrepareStep();
    if (faults.armed() && faults.ShouldFire(FaultPoint::kSgdStepNan)) {
      margin = std::numeric_limits<double>::quiet_NaN();
    }
    switch (guard.Observe(it, margin)) {
      case DivergenceGuard::Action::kHalt:
        return guard.status();
      case DivergenceGuard::Action::kSkipUpdate:
        continue;
      case DivergenceGuard::Action::kProceed:
        break;
    }
    worker->ApplyStep(lr, margin);
    if (probe) probe(it);
    if (checkpoint && config.checkpoint_interval > 0 &&
        it % config.checkpoint_interval == 0) {
      checkpoint(it, guard);
    }
  }
  return Status::OK();
}

int64_t DefaultSyncInterval(const SgdExecutorConfig& config, int64_t span) {
  if (config.sync_interval > 0) return config.sync_interval;
  if (config.checkpoint_interval > 0) return config.checkpoint_interval;
  if (config.divergence.policy != DivergencePolicy::kOff &&
      config.divergence.check_interval > 0) {
    return config.divergence.check_interval;
  }
  return span;  // one round: a pure HogWild run with no periodic work
}

// HogWild rounds: workers claim iteration chunks from a shared counter and
// update the model lock-free; each round ends at a std::barrier whose
// completion step (one thread, everyone else parked, so it may touch the
// whole model race-free) runs the divergence policy, checkpoints, probes,
// and re-arms the counter for the next round.
Status RunParallel(const SgdExecutorConfig& config, FactorModel* model,
                   const SgdExecutor::WorkerFactory& make_worker,
                   const SgdExecutor::ProbeFn& probe,
                   const SgdExecutor::CheckpointFn& checkpoint) {
  const int n = config.num_threads;
  const int64_t first = config.start_iteration;
  const int64_t last = config.iterations;
  if (first > last) return Status::OK();

  std::vector<std::unique_ptr<SgdWorker>> workers;
  workers.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers.push_back(make_worker(w, n));
    CLAPF_CHECK(workers.back() != nullptr);
  }

  DivergenceGuard guard(config.divergence, model);
  guard.RestoreBackoff(config.initial_lr_scale, config.initial_guard_retries);
  const bool guard_on = config.divergence.policy != DivergencePolicy::kOff;
  const double max_abs_margin = config.divergence.max_abs_margin;
  const int64_t sync = DefaultSyncInterval(config, last - first + 1);

  // Round state. Written only by the barrier completion (or before the
  // threads start); workers read it between barriers, which the barrier's
  // synchronization makes race-free.
  std::atomic<int64_t> next_it{first};
  std::atomic<bool> saw_bad{false};
  std::atomic<bool> stop{false};
  int64_t round_end = std::min(last, first + sync - 1);
  double lr_scale = guard.lr_scale();
  int64_t next_ckpt =
      config.checkpoint_interval > 0
          ? ((first - 1) / config.checkpoint_interval + 1) *
                config.checkpoint_interval
          : 0;
  Status final_status;

  auto on_round_complete = [&]() noexcept {
    const int64_t completed = round_end;
    const bool bad = saw_bad.exchange(false, std::memory_order_relaxed);
    if (guard_on) {
      if (guard.ObserveBarrier(completed, bad) ==
          DivergenceGuard::Action::kHalt) {
        final_status = guard.status();
        stop.store(true, std::memory_order_relaxed);
        return;
      }
      lr_scale = guard.lr_scale();
    }
    if (checkpoint && next_ckpt > 0 && completed >= next_ckpt) {
      checkpoint(completed, guard);
      next_ckpt = (completed / config.checkpoint_interval + 1) *
                  config.checkpoint_interval;
    }
    if (probe) probe(completed);
    if (completed >= last) {
      stop.store(true, std::memory_order_relaxed);
    } else {
      round_end = std::min(last, completed + sync);
      next_it.store(completed + 1, std::memory_order_relaxed);
    }
  };
  std::barrier barrier(n, on_round_complete);

  auto worker_loop = [&](int w) {
    SgdWorker* worker = workers[static_cast<size_t>(w)].get();
    FaultInjector& faults = FaultInjector::Instance();
    const double lr0 = config.learning_rate;
    const double lr1 = lr0 * config.final_learning_rate_fraction;
    const double total = static_cast<double>(config.iterations);
    while (!stop.load(std::memory_order_relaxed)) {
      const int64_t end = round_end;
      const double scale = lr_scale;
      while (true) {
        const int64_t base =
            next_it.fetch_add(kClaimChunk, std::memory_order_relaxed);
        if (base > end) break;
        const int64_t hi = std::min(end, base + kClaimChunk - 1);
        for (int64_t it = base; it <= hi; ++it) {
          const double lr =
              (lr0 + (lr1 - lr0) * (static_cast<double>(it - 1) / total)) *
              scale;
          double margin = worker->PrepareStep();
          if (faults.armed() && faults.ShouldFire(FaultPoint::kSgdStepNan)) {
            margin = std::numeric_limits<double>::quiet_NaN();
          }
          // Cheap local health check; the policy reaction runs at the
          // barrier. NaN-safe: NaN fails <= and lands in the bad branch.
          if (guard_on && !(std::fabs(margin) <= max_abs_margin)) {
            saw_bad.store(true, std::memory_order_relaxed);
            continue;
          }
          worker->ApplyStep(lr, margin);
        }
      }
      barrier.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) threads.emplace_back(worker_loop, w);
  for (auto& t : threads) t.join();
  return final_status;
}

}  // namespace

Status SgdExecutor::Run(const SgdExecutorConfig& config, FactorModel* model,
                        const WorkerFactory& make_worker, const ProbeFn& probe,
                        const CheckpointFn& checkpoint) {
  CLAPF_CHECK(model != nullptr);
  if (config.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (config.num_threads == 1) {
    return RunSerial(config, model, make_worker, probe, checkpoint);
  }
  return RunParallel(config, model, make_worker, probe, checkpoint);
}

}  // namespace clapf
