#include "clapf/core/sgd_executor.h"

#include <algorithm>
#include <barrier>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

namespace {

// Iterations a worker claims from the shared counter at a time. Large enough
// that the fetch_add is negligible against ~100ns SGD steps, small enough
// that workers finish a round within a chunk of each other.
constexpr int64_t kClaimChunk = 64;

// Margin-loss sampling stride for the sgd.epoch_loss gauge: the loss
// −ln σ(margin) costs an exp+log (~100ns), so paying it on every ~220ns SGD
// step would blow the executor's ≤2% telemetry budget. Sampling every 64th
// iteration amortizes the transcendentals to <1ns/step, keeps the estimate
// statistically faithful over epoch-sized windows, and stays deterministic
// (the stride is on the global iteration index).
constexpr int64_t kLossSampleStride = 64;

// Resolved handles for the executor's telemetry. Null handles (metrics off)
// are never dereferenced: the hot loops tally into worker-local integers and
// only the flush points consult the handles.
struct SgdMetrics {
  Counter* updates = nullptr;
  Counter* skipped = nullptr;
  Counter* halts = nullptr;
  Counter* epochs = nullptr;
  Gauge* epoch_loss = nullptr;
  Gauge* epoch_updates = nullptr;
  Gauge* guard_rollbacks = nullptr;
  Gauge* guard_clamps = nullptr;
  Gauge* lr_scale = nullptr;

  static SgdMetrics Resolve(MetricsRegistry* registry) {
    SgdMetrics m;
    if (registry == nullptr) return m;
    m.updates = registry->GetCounter("sgd.updates_total");
    m.skipped = registry->GetCounter("sgd.skipped_updates_total");
    m.halts = registry->GetCounter("sgd.halts_total");
    m.epochs = registry->GetCounter("sgd.epochs_total");
    m.epoch_loss = registry->GetGauge("sgd.epoch_loss");
    m.epoch_updates = registry->GetGauge("sgd.epoch_updates");
    m.guard_rollbacks = registry->GetGauge("sgd.guard_rollbacks");
    m.guard_clamps = registry->GetGauge("sgd.guard_clamps");
    m.lr_scale = registry->GetGauge("sgd.lr_scale");
    return m;
  }

  void SetGuardGauges(const DivergenceGuard& guard) const {
    guard_rollbacks->Set(static_cast<double>(guard.rollbacks()));
    guard_clamps->Set(static_cast<double>(guard.clamps()));
    lr_scale->Set(guard.lr_scale());
  }
};

// The exact legacy trainer loop: schedule, sample, fault injection, guard
// observation, update, probe, checkpoint. Every expression matches the
// pre-executor trainers so serial training is bit-identical; the telemetry
// tallies are pure observers (local integer adds, flushed at epoch
// boundaries) and never perturb the training math.
Status RunSerial(const SgdExecutorConfig& config, FactorModel* model,
                 const SgdExecutor::WorkerFactory& make_worker,
                 const SgdExecutor::ProbeFn& probe,
                 const SgdExecutor::CheckpointFn& checkpoint) {
  std::unique_ptr<SgdWorker> worker = make_worker(0, 1);
  CLAPF_CHECK(worker != nullptr);

  DivergenceGuard guard(config.divergence, model);
  guard.RestoreBackoff(config.initial_lr_scale, config.initial_guard_retries);
  FaultInjector& faults = FaultInjector::Instance();

  const bool metered = config.metrics != nullptr;
  const bool epoch_metered = metered && config.epoch_iterations > 0;
  const SgdMetrics mx = SgdMetrics::Resolve(config.metrics);
  int64_t pending_updates = 0;  // tallies not yet flushed to the registry
  int64_t pending_skipped = 0;
  double epoch_loss_acc = 0.0;
  int64_t epoch_loss_n = 0;
  int64_t next_epoch_end =
      epoch_metered ? ((config.start_iteration - 1) / config.epoch_iterations +
                       1) *
                          config.epoch_iterations
                    : std::numeric_limits<int64_t>::max();
  auto flush_counters = [&] {
    if (!metered) return;
    if (pending_updates > 0) mx.updates->Inc(pending_updates);
    if (pending_skipped > 0) mx.skipped->Inc(pending_skipped);
    pending_updates = 0;
    pending_skipped = 0;
    mx.SetGuardGauges(guard);
  };

  const double lr0 = config.learning_rate;
  const double lr1 = lr0 * config.final_learning_rate_fraction;
  const double total = static_cast<double>(config.iterations);

  for (int64_t it = config.start_iteration; it <= config.iterations; ++it) {
    const double lr =
        (lr0 + (lr1 - lr0) * (static_cast<double>(it - 1) / total)) *
        guard.lr_scale();
    double margin = worker->PrepareStep();
    if (faults.armed() && faults.ShouldFire(FaultPoint::kSgdStepNan)) {
      margin = std::numeric_limits<double>::quiet_NaN();
    }
    switch (guard.Observe(it, margin)) {
      case DivergenceGuard::Action::kHalt:
        flush_counters();
        if (metered) mx.halts->Inc();
        return guard.status();
      case DivergenceGuard::Action::kSkipUpdate:
        ++pending_skipped;
        continue;
      case DivergenceGuard::Action::kProceed:
        break;
    }
    worker->ApplyStep(lr, margin);
    ++pending_updates;
    if (epoch_metered) {
      if (it % kLossSampleStride == 0) {
        epoch_loss_acc += -LogSigmoid(margin);
        ++epoch_loss_n;
      }
      if (it == next_epoch_end) {
        mx.epochs->Inc();
        mx.epoch_loss->Set(epoch_loss_n > 0
                               ? epoch_loss_acc /
                                     static_cast<double>(epoch_loss_n)
                               : 0.0);
        // Counters flush exactly at epoch boundaries, so the unflushed
        // update tally IS this epoch's applied-update count.
        mx.epoch_updates->Set(static_cast<double>(pending_updates));
        epoch_loss_acc = 0.0;
        epoch_loss_n = 0;
        next_epoch_end += config.epoch_iterations;
        flush_counters();
      }
    }
    if (probe) probe(it);
    if (checkpoint && config.checkpoint_interval > 0 &&
        it % config.checkpoint_interval == 0) {
      checkpoint(it, guard);
    }
  }
  flush_counters();
  return Status::OK();
}

int64_t DefaultSyncInterval(const SgdExecutorConfig& config, int64_t span) {
  if (config.sync_interval > 0) return config.sync_interval;
  if (config.checkpoint_interval > 0) return config.checkpoint_interval;
  if (config.divergence.policy != DivergencePolicy::kOff &&
      config.divergence.check_interval > 0) {
    return config.divergence.check_interval;
  }
  return span;  // one round: a pure HogWild run with no periodic work
}

// HogWild rounds: workers claim iteration chunks from a shared counter and
// update the model lock-free; each round ends at a std::barrier whose
// completion step (one thread, everyone else parked, so it may touch the
// whole model race-free) runs the divergence policy, checkpoints, probes,
// and re-arms the counter for the next round. Telemetry: workers tally
// locally and flush to the sharded registry counters just before arriving at
// the barrier; the completion step owns the gauges.
Status RunParallel(const SgdExecutorConfig& config, FactorModel* model,
                   const SgdExecutor::WorkerFactory& make_worker,
                   const SgdExecutor::ProbeFn& probe,
                   const SgdExecutor::CheckpointFn& checkpoint) {
  const int n = config.num_threads;
  const int64_t first = config.start_iteration;
  const int64_t last = config.iterations;
  if (first > last) return Status::OK();

  std::vector<std::unique_ptr<SgdWorker>> workers;
  workers.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers.push_back(make_worker(w, n));
    CLAPF_CHECK(workers.back() != nullptr);
  }

  DivergenceGuard guard(config.divergence, model);
  guard.RestoreBackoff(config.initial_lr_scale, config.initial_guard_retries);
  const bool guard_on = config.divergence.policy != DivergencePolicy::kOff;
  const double max_abs_margin = config.divergence.max_abs_margin;
  const int64_t sync = DefaultSyncInterval(config, last - first + 1);

  const bool metered = config.metrics != nullptr;
  const bool epoch_metered = metered && config.epoch_iterations > 0;
  const SgdMetrics mx = SgdMetrics::Resolve(config.metrics);
  // Sampled-loss accumulator for the current round; workers add their local
  // sums just before the barrier, the completion step reads and re-zeroes it
  // while everyone is parked.
  std::atomic<double> round_loss_acc{0.0};
  std::atomic<int64_t> round_loss_n{0};
  int64_t epochs_reported = (first - 1) / std::max<int64_t>(
                                              config.epoch_iterations, 1);

  // Round state. Written only by the barrier completion (or before the
  // threads start); workers read it between barriers, which the barrier's
  // synchronization makes race-free.
  std::atomic<int64_t> next_it{first};
  std::atomic<bool> saw_bad{false};
  std::atomic<bool> stop{false};
  int64_t round_end = std::min(last, first + sync - 1);
  double lr_scale = guard.lr_scale();
  int64_t next_ckpt =
      config.checkpoint_interval > 0
          ? ((first - 1) / config.checkpoint_interval + 1) *
                config.checkpoint_interval
          : 0;
  Status final_status;

  auto on_round_complete = [&]() noexcept {
    const int64_t completed = round_end;
    const bool bad = saw_bad.exchange(false, std::memory_order_relaxed);
    if (metered) {
      mx.SetGuardGauges(guard);
      if (epoch_metered) {
        const double acc =
            round_loss_acc.exchange(0.0, std::memory_order_relaxed);
        const int64_t cnt =
            round_loss_n.exchange(0, std::memory_order_relaxed);
        if (cnt > 0) {
          // In parallel mode the gauge tracks per-round sampled loss — the
          // barrier cadence is the natural "epoch" of a HogWild run.
          mx.epoch_loss->Set(acc / static_cast<double>(cnt));
        }
        const int64_t epochs_done = completed / config.epoch_iterations;
        if (epochs_done > epochs_reported) {
          mx.epochs->Inc(epochs_done - epochs_reported);
          epochs_reported = epochs_done;
        }
      }
    }
    if (guard_on) {
      if (guard.ObserveBarrier(completed, bad) ==
          DivergenceGuard::Action::kHalt) {
        final_status = guard.status();
        if (metered) {
          mx.halts->Inc();
          mx.SetGuardGauges(guard);
        }
        stop.store(true, std::memory_order_relaxed);
        return;
      }
      lr_scale = guard.lr_scale();
    }
    if (checkpoint && next_ckpt > 0 && completed >= next_ckpt) {
      checkpoint(completed, guard);
      next_ckpt = (completed / config.checkpoint_interval + 1) *
                  config.checkpoint_interval;
    }
    if (probe) probe(completed);
    if (completed >= last) {
      stop.store(true, std::memory_order_relaxed);
    } else {
      round_end = std::min(last, completed + sync);
      next_it.store(completed + 1, std::memory_order_relaxed);
    }
  };
  std::barrier barrier(n, on_round_complete);

  auto worker_loop = [&](int w) {
    SgdWorker* worker = workers[static_cast<size_t>(w)].get();
    FaultInjector& faults = FaultInjector::Instance();
    const double lr0 = config.learning_rate;
    const double lr1 = lr0 * config.final_learning_rate_fraction;
    const double total = static_cast<double>(config.iterations);
    while (!stop.load(std::memory_order_relaxed)) {
      const int64_t end = round_end;
      const double scale = lr_scale;
      int64_t local_updates = 0;
      int64_t local_skipped = 0;
      double local_loss_acc = 0.0;
      int64_t local_loss_n = 0;
      while (true) {
        const int64_t base =
            next_it.fetch_add(kClaimChunk, std::memory_order_relaxed);
        if (base > end) break;
        const int64_t hi = std::min(end, base + kClaimChunk - 1);
        for (int64_t it = base; it <= hi; ++it) {
          const double lr =
              (lr0 + (lr1 - lr0) * (static_cast<double>(it - 1) / total)) *
              scale;
          double margin = worker->PrepareStep();
          if (faults.armed() && faults.ShouldFire(FaultPoint::kSgdStepNan)) {
            margin = std::numeric_limits<double>::quiet_NaN();
          }
          // Cheap local health check; the policy reaction runs at the
          // barrier. NaN-safe: NaN fails <= and lands in the bad branch.
          if (guard_on && !(std::fabs(margin) <= max_abs_margin)) {
            saw_bad.store(true, std::memory_order_relaxed);
            ++local_skipped;
            continue;
          }
          worker->ApplyStep(lr, margin);
          ++local_updates;
          if (epoch_metered && it % kLossSampleStride == 0) {
            local_loss_acc += -LogSigmoid(margin);
            ++local_loss_n;
          }
        }
      }
      if (metered) {
        if (local_updates > 0) mx.updates->Inc(local_updates);
        if (local_skipped > 0) mx.skipped->Inc(local_skipped);
        if (local_loss_n > 0) {
          obs_internal::AtomicAddDouble(round_loss_acc, local_loss_acc);
          round_loss_n.fetch_add(local_loss_n, std::memory_order_relaxed);
        }
      }
      barrier.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) threads.emplace_back(worker_loop, w);
  for (auto& t : threads) t.join();
  return final_status;
}

}  // namespace

Status SgdExecutor::Run(const SgdExecutorConfig& config, FactorModel* model,
                        const WorkerFactory& make_worker, const ProbeFn& probe,
                        const CheckpointFn& checkpoint) {
  CLAPF_CHECK(model != nullptr);
  if (config.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (config.num_threads == 1) {
    return RunSerial(config, model, make_worker, probe, checkpoint);
  }
  return RunParallel(config, model, make_worker, probe, checkpoint);
}

}  // namespace clapf
