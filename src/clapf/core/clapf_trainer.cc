#include "clapf/core/clapf_trainer.h"

#include <cmath>
#include <utility>

#include "clapf/core/sgd_executor.h"
#include "clapf/core/smoothing.h"
#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

namespace {

// Per-worker loss accumulator. Owned by Train() (not the worker) so the
// checkpoint callback and the post-run summary can read it after the
// executor has destroyed the workers. In parallel mode each worker writes
// only its own slot and the executor's barriers order those writes before
// any checkpoint/summary read.
struct ClapfLossAcc {
  double acc = 0.0;
  int64_t count = 0;
};

// One CLAPF SGD step under an access policy. PlainAccess reproduces the
// pre-executor serial loop bit-for-bit.
template <typename Access>
class ClapfWorker final : public SgdWorker {
 public:
  ClapfWorker(FactorModel* model, const ClapfOptions& options,
              const Dataset* train, std::unique_ptr<TripleSampler> sampler,
              ClapfLossAcc* loss)
      : model_(model),
        train_(train),
        sampler_(std::move(sampler)),
        loss_(loss),
        lambda_(options.lambda),
        variant_(options.variant),
        is_map_(options.variant == ClapfVariant::kMap),
        is_ndcg_(options.variant == ClapfVariant::kNdcg),
        ci_(is_map_ ? 1.0 - 2.0 * options.lambda : 1.0),
        ck_(is_map_ ? options.lambda : -options.lambda),
        cj_(-(1.0 - options.lambda)),
        reg_u_(options.sgd.reg_user),
        reg_v_(options.sgd.reg_item),
        reg_b_(options.sgd.reg_bias),
        d_(options.sgd.num_factors),
        bias_(options.sgd.use_item_bias),
        user_snapshot_(static_cast<size_t>(options.sgd.num_factors)) {}

  double PrepareStep() override {
    t_ = sampler_->Sample();
    f_ui_ = ScoreWith<Access>(*model_, t_.u, t_.i);
    const double f_uk = ScoreWith<Access>(*model_, t_.u, t_.k);
    const double f_uj = ScoreWith<Access>(*model_, t_.u, t_.j);
    return ClapfMargin(variant_, lambda_, f_ui_, f_uk, f_uj);
  }

  void ApplyStep(double lr, double margin) override {
    // d/dR of ln σ(R) = σ(−R); ascend the log-likelihood.
    double g = Sigmoid(-margin);
    loss_->acc += -LogSigmoid(margin);
    ++loss_->count;

    if (is_ndcg_) {
      // CLAPF-NDCG (library extension): weight the triple by the DCG
      // discount at item i's current rank among the user's observed items,
      // so gradient mass concentrates on the head of the list the way
      // NDCG's gain does. rank_i = 1 + |{t ∈ I_u⁺ : f_ut > f_ui}|.
      auto observed = train_->ItemsOf(t_.u);
      int32_t rank = 1;
      for (ItemId o : observed) {
        if (o != t_.i && ScoreWith<Access>(*model_, t_.u, o) > f_ui_) ++rank;
      }
      g *= 1.0 / std::log2(1.0 + static_cast<double>(rank));
    }

    auto uu = model_->UserFactors(t_.u);
    auto vi = model_->ItemFactors(t_.i);
    auto vk = model_->ItemFactors(t_.k);
    auto vj = model_->ItemFactors(t_.j);
    for (int32_t f = 0; f < d_; ++f) user_snapshot_[f] = Access::Load(uu[f]);

    if (t_.i == t_.k) {
      // Single-item users sample k == i; fold the coefficients so the item
      // vector receives one consistent update.
      const double c = ci_ + ck_;
      for (int32_t f = 0; f < d_; ++f) {
        const double u_old = user_snapshot_[f];
        const double vi_f = Access::Load(vi[f]);
        const double vj_f = Access::Load(vj[f]);
        Access::Store(uu[f], u_old + lr * (g * (c * vi_f + cj_ * vj_f) -
                                           reg_u_ * u_old));
        Access::Store(vi[f], vi_f + lr * (g * c * u_old - reg_v_ * vi_f));
        Access::Store(vj[f], vj_f + lr * (g * cj_ * u_old - reg_v_ * vj_f));
      }
      if (bias_) {
        double& bi = model_->ItemBias(t_.i);
        double& bj = model_->ItemBias(t_.j);
        const double bi_old = Access::Load(bi);
        const double bj_old = Access::Load(bj);
        Access::Store(bi, bi_old + lr * (g * c - reg_b_ * bi_old));
        Access::Store(bj, bj_old + lr * (g * cj_ - reg_b_ * bj_old));
      }
    } else {
      for (int32_t f = 0; f < d_; ++f) {
        const double u_old = user_snapshot_[f];
        const double vi_f = Access::Load(vi[f]);
        const double vk_f = Access::Load(vk[f]);
        const double vj_f = Access::Load(vj[f]);
        Access::Store(uu[f],
                      u_old + lr * (g * (ci_ * vi_f + ck_ * vk_f +
                                         cj_ * vj_f) -
                                    reg_u_ * u_old));
        Access::Store(vi[f], vi_f + lr * (g * ci_ * u_old - reg_v_ * vi_f));
        Access::Store(vk[f], vk_f + lr * (g * ck_ * u_old - reg_v_ * vk_f));
        Access::Store(vj[f], vj_f + lr * (g * cj_ * u_old - reg_v_ * vj_f));
      }
      if (bias_) {
        double& bi = model_->ItemBias(t_.i);
        double& bk = model_->ItemBias(t_.k);
        double& bj = model_->ItemBias(t_.j);
        const double bi_old = Access::Load(bi);
        const double bk_old = Access::Load(bk);
        const double bj_old = Access::Load(bj);
        Access::Store(bi, bi_old + lr * (g * ci_ - reg_b_ * bi_old));
        Access::Store(bk, bk_old + lr * (g * ck_ - reg_b_ * bk_old));
        Access::Store(bj, bj_old + lr * (g * cj_ - reg_b_ * bj_old));
      }
    }
  }

 private:
  FactorModel* model_;
  const Dataset* train_;
  std::unique_ptr<TripleSampler> sampler_;
  ClapfLossAcc* loss_;
  const double lambda_;
  const ClapfVariant variant_;
  const bool is_map_, is_ndcg_;
  const double ci_, ck_, cj_;
  const double reg_u_, reg_v_, reg_b_;
  const int32_t d_;
  const bool bias_;
  std::vector<double> user_snapshot_;
  Triple t_;
  double f_ui_ = 0.0;
};

}  // namespace

ClapfTrainer::ClapfTrainer(const ClapfOptions& options) : options_(options) {}

std::string ClapfTrainer::name() const {
  std::string base =
      options_.sampler == ClapfSamplerKind::kDss ? "CLAPF+" : "CLAPF";
  switch (options_.variant) {
    case ClapfVariant::kMap:
      base += "-MAP";
      break;
    case ClapfVariant::kMrr:
      base += "-MRR";
      break;
    case ClapfVariant::kNdcg:
      base += "-NDCG";
      break;
  }
  if (options_.sampler == ClapfSamplerKind::kPositiveOnly) base += "(pos)";
  if (options_.sampler == ClapfSamplerKind::kNegativeOnly) base += "(neg)";
  return base;
}

std::unique_ptr<TripleSampler> ClapfTrainer::MakeSampler(
    const Dataset& train, uint64_t seed) const {
  if (options_.sampler == ClapfSamplerKind::kUniform) {
    return std::make_unique<UniformTripleSampler>(&train, seed);
  }
  DssOptions dss;
  dss.variant = options_.variant;
  dss.tail_fraction = options_.dss_tail_fraction;
  dss.refresh_interval = options_.dss_refresh_interval;
  dss.adaptive_positive = options_.sampler != ClapfSamplerKind::kNegativeOnly;
  dss.adaptive_negative = options_.sampler != ClapfSamplerKind::kPositiveOnly;
  dss.metrics = options_.sgd.metrics;
  return std::make_unique<DssSampler>(&train, model_.get(), dss, seed);
}

Status ClapfTrainer::Train(const Dataset& train) {
  if (options_.lambda < 0.0 || options_.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0, 1]");
  }
  if (options_.sgd.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  if (options_.sgd.iterations < 0) {
    return Status::InvalidArgument("iterations must be >= 0");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }
  if (TrainableUsers(train).empty()) {
    return Status::FailedPrecondition(
        "no user has both observed and unobserved items");
  }

  Rng init_rng(options_.sgd.seed);
  model_ = std::make_unique<FactorModel>(
      train.num_users(), train.num_items(), options_.sgd.num_factors,
      options_.sgd.use_item_bias);
  model_->InitGaussian(init_rng, options_.sgd.init_stddev);

  // Crash recovery: restart from the newest valid checkpoint when one is
  // compatible with this run (same seed, same dimensions).
  TrainerCheckpointState ckpt_state;
  ckpt_state.seed = options_.sgd.seed;
  int64_t start_it = 1;
  CheckpointManager checkpoints(options_.checkpoint);
  if (checkpoints.enabled()) {
    CLAPF_RETURN_IF_ERROR(checkpoints.Init());
    if (options_.checkpoint.resume) {
      auto latest = checkpoints.LoadLatest();
      if (latest.ok()) {
        const TrainerCheckpointState& st = latest->state;
        const FactorModel& m = latest->model;
        if (st.seed == options_.sgd.seed &&
            m.num_users() == train.num_users() &&
            m.num_items() == train.num_items() &&
            m.num_factors() == options_.sgd.num_factors &&
            m.use_item_bias() == options_.sgd.use_item_bias &&
            st.iteration <= options_.sgd.iterations) {
          *model_ = std::move(latest->model);
          ckpt_state = st;
          start_it = st.iteration + 1;
          CLAPF_LOG(Info) << name() << ": resuming from checkpoint at iteration "
                          << st.iteration;
        } else {
          CLAPF_LOG(Warning)
              << name() << ": ignoring incompatible checkpoint in "
              << options_.checkpoint.dir << " (seed/dimension mismatch)";
        }
      } else if (latest.status().code() != StatusCode::kNotFound) {
        return latest.status();
      }
    }
  }

  const int num_threads = options_.sgd.num_threads;
  std::vector<ClapfLossAcc> loss_slots(
      static_cast<size_t>(num_threads < 1 ? 1 : num_threads));
  // The resumed run continues the crashed run's running loss average.
  loss_slots[0].acc = ckpt_state.loss_acc;
  loss_slots[0].count = ckpt_state.loss_count;

  const uint64_t base_seed = options_.sgd.seed ^ 0x5eedu;
  auto factory = [&](int w, int n) -> std::unique_ptr<SgdWorker> {
    auto sampler = MakeSampler(train, WorkerSeed(base_seed, w));
    if (n == 1) {
      // Replay the draws the checkpointed run already consumed so the
      // resumed sample stream continues exactly where the crashed run left
      // off. With the uniform sampler this makes resumption bit-identical
      // to an uninterrupted run; adaptive samplers re-draw against the
      // restored model, which is correct but not bit-exact. Parallel
      // workers skip the replay: their streams are independent of the
      // iteration counter.
      for (int64_t i = 1; i < start_it; ++i) sampler->Sample();
      return std::make_unique<ClapfWorker<PlainAccess>>(
          model_.get(), options_, &train, std::move(sampler), &loss_slots[0]);
    }
    return std::make_unique<ClapfWorker<RelaxedAccess>>(
        model_.get(), options_, &train, std::move(sampler),
        &loss_slots[static_cast<size_t>(w)]);
  };

  SgdExecutorConfig config;
  config.num_threads = options_.sgd.num_threads;
  config.start_iteration = start_it;
  config.iterations = options_.sgd.iterations;
  config.learning_rate = options_.sgd.learning_rate;
  config.final_learning_rate_fraction =
      options_.sgd.final_learning_rate_fraction;
  config.divergence = options_.sgd.divergence;
  config.initial_lr_scale = ckpt_state.lr_scale;
  config.initial_guard_retries = ckpt_state.guard_retries;
  config.metrics = options_.sgd.metrics;
  config.epoch_iterations = static_cast<int64_t>(train.num_interactions());
  if (checkpoints.enabled()) {
    config.checkpoint_interval = options_.checkpoint.interval;
  }

  SgdExecutor::ProbeFn probe;
  if (probe_installed()) probe = [this](int64_t it) { MaybeProbe(it); };

  SgdExecutor::CheckpointFn checkpoint;
  if (checkpoints.enabled()) {
    checkpoint = [&](int64_t it, const DivergenceGuard& guard) {
      ckpt_state.iteration = it;
      ckpt_state.lr_scale = guard.lr_scale();
      ckpt_state.guard_retries = static_cast<int32_t>(guard.rollbacks());
      double acc = 0.0;
      int64_t count = 0;
      for (const ClapfLossAcc& slot : loss_slots) {
        acc += slot.acc;
        count += slot.count;
      }
      ckpt_state.loss_acc = acc;
      ckpt_state.loss_count = count;
      // A failed snapshot degrades durability, not correctness: log and
      // keep training rather than killing a multi-hour run.
      if (Status s = checkpoints.Write(*model_, ckpt_state); !s.ok()) {
        CLAPF_LOG(Warning) << name() << ": checkpoint write failed at iteration "
                           << it << ": " << s.ToString();
      }
    };
  }

  Status run = SgdExecutor::Run(config, model_.get(), factory, probe,
                                checkpoint);
  if (!run.ok()) return run;

  double acc = 0.0;
  int64_t count = 0;
  for (const ClapfLossAcc& slot : loss_slots) {
    acc += slot.acc;
    count += slot.count;
  }
  last_average_loss_ = count > 0 ? acc / static_cast<double>(count) : 0.0;
  return Status::OK();
}

}  // namespace clapf
