#include "clapf/core/clapf_trainer.h"

#include <cmath>
#include <limits>

#include "clapf/core/smoothing.h"
#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

ClapfTrainer::ClapfTrainer(const ClapfOptions& options) : options_(options) {}

std::string ClapfTrainer::name() const {
  std::string base =
      options_.sampler == ClapfSamplerKind::kDss ? "CLAPF+" : "CLAPF";
  switch (options_.variant) {
    case ClapfVariant::kMap:
      base += "-MAP";
      break;
    case ClapfVariant::kMrr:
      base += "-MRR";
      break;
    case ClapfVariant::kNdcg:
      base += "-NDCG";
      break;
  }
  if (options_.sampler == ClapfSamplerKind::kPositiveOnly) base += "(pos)";
  if (options_.sampler == ClapfSamplerKind::kNegativeOnly) base += "(neg)";
  return base;
}

std::unique_ptr<TripleSampler> ClapfTrainer::MakeSampler(
    const Dataset& train) const {
  const uint64_t sampler_seed = options_.sgd.seed ^ 0x5eedu;
  if (options_.sampler == ClapfSamplerKind::kUniform) {
    return std::make_unique<UniformTripleSampler>(&train, sampler_seed);
  }
  DssOptions dss;
  dss.variant = options_.variant;
  dss.tail_fraction = options_.dss_tail_fraction;
  dss.refresh_interval = options_.dss_refresh_interval;
  dss.adaptive_positive = options_.sampler != ClapfSamplerKind::kNegativeOnly;
  dss.adaptive_negative = options_.sampler != ClapfSamplerKind::kPositiveOnly;
  return std::make_unique<DssSampler>(&train, model_.get(), dss, sampler_seed);
}

Status ClapfTrainer::Train(const Dataset& train) {
  if (options_.lambda < 0.0 || options_.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0, 1]");
  }
  if (options_.sgd.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  if (options_.sgd.iterations < 0) {
    return Status::InvalidArgument("iterations must be >= 0");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }
  if (TrainableUsers(train).empty()) {
    return Status::FailedPrecondition(
        "no user has both observed and unobserved items");
  }

  Rng init_rng(options_.sgd.seed);
  model_ = std::make_unique<FactorModel>(
      train.num_users(), train.num_items(), options_.sgd.num_factors,
      options_.sgd.use_item_bias);
  model_->InitGaussian(init_rng, options_.sgd.init_stddev);

  // Crash recovery: restart from the newest valid checkpoint when one is
  // compatible with this run (same seed, same dimensions).
  TrainerCheckpointState ckpt_state;
  ckpt_state.seed = options_.sgd.seed;
  int64_t start_it = 1;
  CheckpointManager checkpoints(options_.checkpoint);
  if (checkpoints.enabled()) {
    CLAPF_RETURN_IF_ERROR(checkpoints.Init());
    if (options_.checkpoint.resume) {
      auto latest = checkpoints.LoadLatest();
      if (latest.ok()) {
        const TrainerCheckpointState& st = latest->state;
        const FactorModel& m = latest->model;
        if (st.seed == options_.sgd.seed &&
            m.num_users() == train.num_users() &&
            m.num_items() == train.num_items() &&
            m.num_factors() == options_.sgd.num_factors &&
            m.use_item_bias() == options_.sgd.use_item_bias &&
            st.iteration <= options_.sgd.iterations) {
          *model_ = std::move(latest->model);
          ckpt_state = st;
          start_it = st.iteration + 1;
          CLAPF_LOG(Info) << name() << ": resuming from checkpoint at iteration "
                          << st.iteration;
        } else {
          CLAPF_LOG(Warning)
              << name() << ": ignoring incompatible checkpoint in "
              << options_.checkpoint.dir << " (seed/dimension mismatch)";
        }
      } else if (latest.status().code() != StatusCode::kNotFound) {
        return latest.status();
      }
    }
  }

  std::unique_ptr<TripleSampler> sampler = MakeSampler(train);
  // Replay the draws the checkpointed run already consumed so the resumed
  // sample stream continues exactly where the crashed run left off. With the
  // uniform sampler this makes resumption bit-identical to an uninterrupted
  // run; adaptive samplers re-draw against the restored model, which is
  // correct but not bit-exact.
  for (int64_t i = 1; i < start_it; ++i) sampler->Sample();

  const double lambda = options_.lambda;
  const bool is_map = options_.variant == ClapfVariant::kMap;
  const bool is_ndcg = options_.variant == ClapfVariant::kNdcg;
  // Margin coefficients: R = ci*f_ui + ck*f_uk + cj*f_uj. The NDCG
  // instantiation shares the MRR margin; its rank bias comes from the
  // per-triple discount weight below.
  const double ci = is_map ? 1.0 - 2.0 * lambda : 1.0;
  const double ck = is_map ? lambda : -lambda;
  const double cj = -(1.0 - lambda);

  const double lr0 = options_.sgd.learning_rate;
  const double lr1 = lr0 * options_.sgd.final_learning_rate_fraction;
  const double total = static_cast<double>(options_.sgd.iterations);
  const double reg_u = options_.sgd.reg_user;
  const double reg_v = options_.sgd.reg_item;
  const double reg_b = options_.sgd.reg_bias;
  const int32_t d = options_.sgd.num_factors;
  const bool bias = options_.sgd.use_item_bias;

  std::vector<double> user_snapshot(static_cast<size_t>(d));
  double loss_acc = ckpt_state.loss_acc;
  int64_t loss_count = ckpt_state.loss_count;

  DivergenceGuard guard(options_.sgd.divergence, model_.get());
  guard.RestoreBackoff(ckpt_state.lr_scale, ckpt_state.guard_retries);
  FaultInjector& faults = FaultInjector::Instance();

  for (int64_t it = start_it; it <= options_.sgd.iterations; ++it) {
    const double lr =
        (lr0 + (lr1 - lr0) * (static_cast<double>(it - 1) / total)) *
        guard.lr_scale();
    const Triple t = sampler->Sample();
    const double f_ui = model_->Score(t.u, t.i);
    const double f_uk = model_->Score(t.u, t.k);
    const double f_uj = model_->Score(t.u, t.j);
    double margin = ClapfMargin(options_.variant, lambda, f_ui, f_uk, f_uj);
    if (faults.armed() && faults.ShouldFire(FaultPoint::kSgdStepNan)) {
      margin = std::numeric_limits<double>::quiet_NaN();
    }
    switch (guard.Observe(it, margin)) {
      case DivergenceGuard::Action::kHalt:
        return guard.status();
      case DivergenceGuard::Action::kSkipUpdate:
        continue;
      case DivergenceGuard::Action::kProceed:
        break;
    }
    // d/dR of ln σ(R) = σ(−R); ascend the log-likelihood.
    double g = Sigmoid(-margin);
    loss_acc += -LogSigmoid(margin);
    ++loss_count;

    if (is_ndcg) {
      // CLAPF-NDCG (library extension): weight the triple by the DCG
      // discount at item i's current rank among the user's observed items,
      // so gradient mass concentrates on the head of the list the way
      // NDCG's gain does. rank_i = 1 + |{t ∈ I_u⁺ : f_ut > f_ui}|.
      auto observed = train.ItemsOf(t.u);
      int32_t rank = 1;
      for (ItemId o : observed) {
        if (o != t.i && model_->Score(t.u, o) > f_ui) ++rank;
      }
      g *= 1.0 / std::log2(1.0 + static_cast<double>(rank));
    }

    auto uu = model_->UserFactors(t.u);
    auto vi = model_->ItemFactors(t.i);
    auto vk = model_->ItemFactors(t.k);
    auto vj = model_->ItemFactors(t.j);
    for (int32_t f = 0; f < d; ++f) user_snapshot[f] = uu[f];

    if (t.i == t.k) {
      // Single-item users sample k == i; fold the coefficients so the item
      // vector receives one consistent update.
      const double c = ci + ck;
      for (int32_t f = 0; f < d; ++f) {
        const double u_old = user_snapshot[f];
        uu[f] += lr * (g * (c * vi[f] + cj * vj[f]) - reg_u * uu[f]);
        vi[f] += lr * (g * c * u_old - reg_v * vi[f]);
        vj[f] += lr * (g * cj * u_old - reg_v * vj[f]);
      }
      if (bias) {
        double& bi = model_->ItemBias(t.i);
        double& bj = model_->ItemBias(t.j);
        bi += lr * (g * c - reg_b * bi);
        bj += lr * (g * cj - reg_b * bj);
      }
    } else {
      for (int32_t f = 0; f < d; ++f) {
        const double u_old = user_snapshot[f];
        uu[f] += lr * (g * (ci * vi[f] + ck * vk[f] + cj * vj[f]) -
                       reg_u * uu[f]);
        vi[f] += lr * (g * ci * u_old - reg_v * vi[f]);
        vk[f] += lr * (g * ck * u_old - reg_v * vk[f]);
        vj[f] += lr * (g * cj * u_old - reg_v * vj[f]);
      }
      if (bias) {
        double& bi = model_->ItemBias(t.i);
        double& bk = model_->ItemBias(t.k);
        double& bj = model_->ItemBias(t.j);
        bi += lr * (g * ci - reg_b * bi);
        bk += lr * (g * ck - reg_b * bk);
        bj += lr * (g * cj - reg_b * bj);
      }
    }

    MaybeProbe(it);

    if (checkpoints.enabled() && it % options_.checkpoint.interval == 0) {
      ckpt_state.iteration = it;
      ckpt_state.lr_scale = guard.lr_scale();
      ckpt_state.guard_retries = static_cast<int32_t>(guard.rollbacks());
      ckpt_state.loss_acc = loss_acc;
      ckpt_state.loss_count = loss_count;
      // A failed snapshot degrades durability, not correctness: log and
      // keep training rather than killing a multi-hour run.
      if (Status s = checkpoints.Write(*model_, ckpt_state); !s.ok()) {
        CLAPF_LOG(Warning) << name() << ": checkpoint write failed at iteration "
                           << it << ": " << s.ToString();
      }
    }
  }

  last_average_loss_ =
      loss_count > 0 ? loss_acc / static_cast<double>(loss_count) : 0.0;
  return Status::OK();
}

}  // namespace clapf
