#include "clapf/core/clapf_trainer.h"

#include <cmath>

#include "clapf/core/smoothing.h"
#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

ClapfTrainer::ClapfTrainer(const ClapfOptions& options) : options_(options) {}

std::string ClapfTrainer::name() const {
  std::string base =
      options_.sampler == ClapfSamplerKind::kDss ? "CLAPF+" : "CLAPF";
  switch (options_.variant) {
    case ClapfVariant::kMap:
      base += "-MAP";
      break;
    case ClapfVariant::kMrr:
      base += "-MRR";
      break;
    case ClapfVariant::kNdcg:
      base += "-NDCG";
      break;
  }
  if (options_.sampler == ClapfSamplerKind::kPositiveOnly) base += "(pos)";
  if (options_.sampler == ClapfSamplerKind::kNegativeOnly) base += "(neg)";
  return base;
}

std::unique_ptr<TripleSampler> ClapfTrainer::MakeSampler(
    const Dataset& train) const {
  const uint64_t sampler_seed = options_.sgd.seed ^ 0x5eedu;
  if (options_.sampler == ClapfSamplerKind::kUniform) {
    return std::make_unique<UniformTripleSampler>(&train, sampler_seed);
  }
  DssOptions dss;
  dss.variant = options_.variant;
  dss.tail_fraction = options_.dss_tail_fraction;
  dss.refresh_interval = options_.dss_refresh_interval;
  dss.adaptive_positive = options_.sampler != ClapfSamplerKind::kNegativeOnly;
  dss.adaptive_negative = options_.sampler != ClapfSamplerKind::kPositiveOnly;
  return std::make_unique<DssSampler>(&train, model_.get(), dss, sampler_seed);
}

Status ClapfTrainer::Train(const Dataset& train) {
  if (options_.lambda < 0.0 || options_.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0, 1]");
  }
  if (options_.sgd.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  if (options_.sgd.iterations < 0) {
    return Status::InvalidArgument("iterations must be >= 0");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }
  if (TrainableUsers(train).empty()) {
    return Status::FailedPrecondition(
        "no user has both observed and unobserved items");
  }

  Rng init_rng(options_.sgd.seed);
  model_ = std::make_unique<FactorModel>(
      train.num_users(), train.num_items(), options_.sgd.num_factors,
      options_.sgd.use_item_bias);
  model_->InitGaussian(init_rng, options_.sgd.init_stddev);

  std::unique_ptr<TripleSampler> sampler = MakeSampler(train);

  const double lambda = options_.lambda;
  const bool is_map = options_.variant == ClapfVariant::kMap;
  const bool is_ndcg = options_.variant == ClapfVariant::kNdcg;
  // Margin coefficients: R = ci*f_ui + ck*f_uk + cj*f_uj. The NDCG
  // instantiation shares the MRR margin; its rank bias comes from the
  // per-triple discount weight below.
  const double ci = is_map ? 1.0 - 2.0 * lambda : 1.0;
  const double ck = is_map ? lambda : -lambda;
  const double cj = -(1.0 - lambda);

  const double lr0 = options_.sgd.learning_rate;
  const double lr1 = lr0 * options_.sgd.final_learning_rate_fraction;
  const double total = static_cast<double>(options_.sgd.iterations);
  const double reg_u = options_.sgd.reg_user;
  const double reg_v = options_.sgd.reg_item;
  const double reg_b = options_.sgd.reg_bias;
  const int32_t d = options_.sgd.num_factors;
  const bool bias = options_.sgd.use_item_bias;

  std::vector<double> user_snapshot(static_cast<size_t>(d));
  double loss_acc = 0.0;
  int64_t loss_count = 0;

  for (int64_t it = 1; it <= options_.sgd.iterations; ++it) {
    const double lr =
        lr0 + (lr1 - lr0) * (static_cast<double>(it - 1) / total);
    const Triple t = sampler->Sample();
    const double f_ui = model_->Score(t.u, t.i);
    const double f_uk = model_->Score(t.u, t.k);
    const double f_uj = model_->Score(t.u, t.j);
    const double margin =
        ClapfMargin(options_.variant, lambda, f_ui, f_uk, f_uj);
    // d/dR of ln σ(R) = σ(−R); ascend the log-likelihood.
    double g = Sigmoid(-margin);
    loss_acc += -LogSigmoid(margin);
    ++loss_count;

    if (is_ndcg) {
      // CLAPF-NDCG (library extension): weight the triple by the DCG
      // discount at item i's current rank among the user's observed items,
      // so gradient mass concentrates on the head of the list the way
      // NDCG's gain does. rank_i = 1 + |{t ∈ I_u⁺ : f_ut > f_ui}|.
      auto observed = train.ItemsOf(t.u);
      int32_t rank = 1;
      for (ItemId o : observed) {
        if (o != t.i && model_->Score(t.u, o) > f_ui) ++rank;
      }
      g *= 1.0 / std::log2(1.0 + static_cast<double>(rank));
    }

    auto uu = model_->UserFactors(t.u);
    auto vi = model_->ItemFactors(t.i);
    auto vk = model_->ItemFactors(t.k);
    auto vj = model_->ItemFactors(t.j);
    for (int32_t f = 0; f < d; ++f) user_snapshot[f] = uu[f];

    if (t.i == t.k) {
      // Single-item users sample k == i; fold the coefficients so the item
      // vector receives one consistent update.
      const double c = ci + ck;
      for (int32_t f = 0; f < d; ++f) {
        const double u_old = user_snapshot[f];
        uu[f] += lr * (g * (c * vi[f] + cj * vj[f]) - reg_u * uu[f]);
        vi[f] += lr * (g * c * u_old - reg_v * vi[f]);
        vj[f] += lr * (g * cj * u_old - reg_v * vj[f]);
      }
      if (bias) {
        double& bi = model_->ItemBias(t.i);
        double& bj = model_->ItemBias(t.j);
        bi += lr * (g * c - reg_b * bi);
        bj += lr * (g * cj - reg_b * bj);
      }
    } else {
      for (int32_t f = 0; f < d; ++f) {
        const double u_old = user_snapshot[f];
        uu[f] += lr * (g * (ci * vi[f] + ck * vk[f] + cj * vj[f]) -
                       reg_u * uu[f]);
        vi[f] += lr * (g * ci * u_old - reg_v * vi[f]);
        vk[f] += lr * (g * ck * u_old - reg_v * vk[f]);
        vj[f] += lr * (g * cj * u_old - reg_v * vj[f]);
      }
      if (bias) {
        double& bi = model_->ItemBias(t.i);
        double& bk = model_->ItemBias(t.k);
        double& bj = model_->ItemBias(t.j);
        bi += lr * (g * ci - reg_b * bi);
        bk += lr * (g * ck - reg_b * bk);
        bj += lr * (g * cj - reg_b * bj);
      }
    }

    MaybeProbe(it);
  }

  last_average_loss_ =
      loss_count > 0 ? loss_acc / static_cast<double>(loss_count) : 0.0;
  return Status::OK();
}

}  // namespace clapf
