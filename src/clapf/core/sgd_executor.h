#ifndef CLAPF_CORE_SGD_EXECUTOR_H_
#define CLAPF_CORE_SGD_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "clapf/core/divergence_guard.h"
#include "clapf/model/factor_model.h"
#include "clapf/obs/metrics.h"
#include "clapf/util/random.h"
#include "clapf/util/status.h"

namespace clapf {

/// Parameter-access policy for the SGD update kernels. Each trainer writes
/// its gradient step once, templated on one of these, and instantiates it
/// twice: PlainAccess for the serial path (ordinary loads/stores — compiles
/// to exactly the pre-executor code, so serial training stays bit-identical)
/// and RelaxedAccess for HogWild workers. Relaxed atomics on doubles compile
/// to plain movs on x86-64, so the parallel kernel pays nothing for being
/// data-race-free (and TSan-clean) under concurrent updates.
struct PlainAccess {
  static double Load(const double& x) { return x; }
  static void Store(double& x, double v) { x = v; }
};

struct RelaxedAccess {
  static double Load(const double& x) {
    // atomic_ref requires a non-const referent even for loads.
    return std::atomic_ref<double>(const_cast<double&>(x))
        .load(std::memory_order_relaxed);
  }
  static void Store(double& x, double v) {
    std::atomic_ref<double>(x).store(v, std::memory_order_relaxed);
  }
};

/// f_ui under an access policy. Replicates FactorModel::Score's exact
/// summation order (bias first, then factors ascending) so the PlainAccess
/// instantiation is bit-identical to calling Score().
template <typename Access>
double ScoreWith(const FactorModel& m, UserId u, ItemId i) {
  auto uf = m.UserFactors(u);
  auto vf = m.ItemFactors(i);
  double s = m.use_item_bias()
                 ? Access::Load(m.item_bias_data()[static_cast<size_t>(i)])
                 : 0.0;
  const int32_t d = m.num_factors();
  for (int32_t f = 0; f < d; ++f) {
    s += Access::Load(uf[f]) * Access::Load(vf[f]);
  }
  return s;
}

/// Seed for worker `w`'s sampler stream. Worker 0 keeps `base` so the serial
/// path (one worker) reproduces the legacy stream bit-for-bit; workers > 0
/// get independent SplitMix64-derived streams.
inline uint64_t WorkerSeed(uint64_t base, int worker) {
  if (worker == 0) return base;
  uint64_t state =
      base + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(worker);
  return SplitMix64(state);
}

/// One worker's view of a trainer's SGD step, split at the point where the
/// executor injects faults and health checks: PrepareStep draws the next
/// sample and returns the health value (the margin) derived from the current
/// model; ApplyStep applies the gradient update for that sample. The margin
/// handed back may differ from what PrepareStep returned (fault injection
/// poisons it with NaN), so ApplyStep must derive its gradient from the
/// argument, not from cached state. Workers are single-threaded objects;
/// concurrency comes from running several of them against the shared model.
class SgdWorker {
 public:
  virtual ~SgdWorker() = default;

  /// Draws the next training sample and returns its health value.
  virtual double PrepareStep() = 0;

  /// Applies the update for the sample drawn by the last PrepareStep, at
  /// learning rate `lr` (schedule × guard backoff already folded in).
  virtual void ApplyStep(double lr, double margin) = 0;
};

/// Configuration of one executor run. The schedule fields mirror SgdOptions;
/// the initial_* fields restore DivergenceGuard backoff recovered from a
/// checkpoint.
struct SgdExecutorConfig {
  int num_threads = 1;
  /// First iteration to run, 1-based (> 1 when resuming from a checkpoint).
  int64_t start_iteration = 1;
  /// Last iteration, inclusive (the T of the O(T·d) analysis).
  int64_t iterations = 0;
  /// Linear learning-rate schedule, evaluated per iteration exactly as the
  /// legacy trainer loops did.
  double learning_rate = 0.05;
  double final_learning_rate_fraction = 1.0;
  DivergenceOptions divergence;
  double initial_lr_scale = 1.0;
  int32_t initial_guard_retries = 0;
  /// Iterations between checkpoint callbacks; <= 0 disables them. In serial
  /// mode checkpoints fire exactly at multiples of the interval (legacy
  /// behavior); in parallel mode they fire at the first worker barrier at or
  /// after each multiple.
  int64_t checkpoint_interval = 0;
  /// Iterations per parallel synchronization round (worker barrier). <= 0
  /// picks a default: the checkpoint interval if set, else the guard's
  /// check_interval if monitoring is on, else the whole run in one round.
  /// Ignored in serial mode.
  int64_t sync_interval = 0;
  /// Telemetry sink; null (default) disables all executor metrics at the
  /// cost of one branch per flush point. When set, the executor emits (see
  /// DESIGN.md "Observability" for the full inventory):
  ///   sgd.updates_total / sgd.skipped_updates_total / sgd.halts_total
  ///   sgd.epochs_total, sgd.epoch_loss, sgd.epoch_updates
  ///   sgd.guard_rollbacks, sgd.guard_clamps, sgd.lr_scale
  /// Counters are tallied in worker-local integers and flushed to the
  /// registry at epoch/barrier boundaries and at run end, so the per-step
  /// hot-path cost is one local add — the registry's sharded atomics are
  /// only touched at flush cadence.
  MetricsRegistry* metrics = nullptr;
  /// Iterations per "epoch" for the epoch metrics (typically the training
  /// set size, so one epoch ≈ one pass). <= 0 records no epoch metrics.
  /// Requires `metrics`.
  int64_t epoch_iterations = 0;
};

/// Shared SGD execution engine for the sampled-gradient trainers (CLAPF,
/// BPR, MPR, CLiMF). One thread runs the exact legacy loop: schedule, sample,
/// fault injection, DivergenceGuard::Observe, update, probe, checkpoint —
/// bit-identical to the pre-executor trainers. Several threads run HogWild:
/// workers claim iteration chunks from a shared counter and update the model
/// lock-free, synchronizing at round barriers where a single thread runs the
/// guard's policy machinery, checkpoints, and probes while the others are
/// parked.
///
/// Determinism contract: num_threads == 1 is bit-identical given the seed;
/// num_threads > 1 is statistically equivalent (same converged quality, not
/// the same bits).
class SgdExecutor {
 public:
  /// Builds worker `worker_index` of `num_workers`. Called on the calling
  /// thread for every worker before any SGD step runs, so factories may
  /// touch shared state freely.
  using WorkerFactory =
      std::function<std::unique_ptr<SgdWorker>(int worker_index,
                                               int num_workers)>;
  /// Training probe, invoked with the 1-based iteration count: after every
  /// iteration in serial mode, at round barriers in parallel mode.
  using ProbeFn = std::function<void(int64_t iteration)>;
  /// Checkpoint hook; see SgdExecutorConfig::checkpoint_interval for when it
  /// fires. The guard argument carries lr_scale/rollbacks for the state
  /// block.
  using CheckpointFn =
      std::function<void(int64_t iteration, const DivergenceGuard& guard)>;

  /// Runs the configured iteration range to completion. Returns the guard's
  /// failure when divergence halts the run, OK otherwise.
  static Status Run(const SgdExecutorConfig& config, FactorModel* model,
                    const WorkerFactory& make_worker,
                    const ProbeFn& probe = nullptr,
                    const CheckpointFn& checkpoint = nullptr);
};

}  // namespace clapf

#endif  // CLAPF_CORE_SGD_EXECUTOR_H_
