#ifndef CLAPF_CORE_TRAINER_H_
#define CLAPF_CORE_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "clapf/core/divergence_guard.h"
#include "clapf/core/ranker.h"
#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/obs/metrics.h"
#include "clapf/util/status.h"

namespace clapf {

/// Hyper-parameters shared by all SGD matrix-factorization trainers
/// (BPR, MPR, CLiMF, CLAPF). Defaults follow the paper's §6.3 settings.
struct SgdOptions {
  /// Latent dimensionality d (paper fixes d = 20).
  int32_t num_factors = 20;
  /// Learning rate γ (initial value when decay is enabled).
  double learning_rate = 0.05;
  /// Final learning rate as a fraction of `learning_rate`, reached linearly
  /// at the last iteration. 1.0 = constant rate. SGD with a decaying rate
  /// settles instead of orbiting a noise ball.
  double final_learning_rate_fraction = 1.0;
  /// L2 regularization α_u, α_v, β_v.
  double reg_user = 0.01;
  double reg_item = 0.01;
  double reg_bias = 0.01;
  /// Number of single-sample SGD iterations T.
  int64_t iterations = 100000;
  /// Learn an item bias b_i (paper's predictor f_ui = U_u·V_i + b_i).
  bool use_item_bias = true;
  /// Stddev of the Gaussian parameter initialization.
  double init_stddev = 0.01;
  /// Seed for initialization and sampling.
  uint64_t seed = 1;
  /// SGD worker threads. 1 (default) runs the original serial loop —
  /// bit-identical results given the seed, including checkpoint resume.
  /// > 1 runs HogWild-style lock-free parallel SGD (Niu et al., 2011): each
  /// worker owns an independent sampler stream derived from `seed` and
  /// applies updates to the shared model without locks, so the result is
  /// statistically equivalent but not bit-reproducible across runs or
  /// thread counts.
  int num_threads = 1;
  /// Numerical-health monitoring (NaN/Inf/exploding factors) for the SGD
  /// loop; off by default so the hot path is unchanged.
  DivergenceOptions divergence;
  /// Telemetry sink for training metrics (epoch loss, update counts, guard
  /// events, sampler stats). Null (default) disables instrumentation; the
  /// trainer and its sampler then pay nothing on the hot path. Not owned;
  /// must outlive Train().
  MetricsRegistry* metrics = nullptr;
};

/// A recommendation method that can be fitted to a training dataset and then
/// scores items per user. All of the paper's methods (CLAPF and the nine
/// baselines) implement this interface, which is what the benchmark harness
/// and the Evaluator consume.
class Trainer : public Ranker {
 public:
  /// Observation hook invoked every `interval` iterations during training
  /// (used by the Fig. 4 convergence experiments). Receives the 1-based
  /// iteration count.
  using ProbeFn = std::function<void(int64_t iteration, const Trainer&)>;

  ~Trainer() override = default;

  /// Fits the method. May be called once per instance.
  virtual Status Train(const Dataset& train) = 0;

  /// Display name, e.g. "CLAPF-MAP" or "BPR".
  virtual std::string name() const = 0;

  /// Installs the training probe; pass interval <= 0 to disable.
  void SetProbe(int64_t interval, ProbeFn fn) {
    probe_interval_ = interval;
    probe_ = std::move(fn);
  }

 protected:
  /// Invokes the probe if one is due at `iteration` (1-based).
  void MaybeProbe(int64_t iteration) {
    if (probe_ && probe_interval_ > 0 && iteration % probe_interval_ == 0) {
      probe_(iteration, *this);
    }
  }

  /// True when SetProbe installed an active probe. Trainers skip wiring the
  /// executor's probe callback otherwise, so the unprobed hot loop never
  /// pays for an std::function call.
  bool probe_installed() const {
    return static_cast<bool>(probe_) && probe_interval_ > 0;
  }

 private:
  int64_t probe_interval_ = 0;
  ProbeFn probe_;
};

/// Base for trainers whose predictor is a FactorModel; wires ScoreItems to
/// the model and exposes it for inspection/serialization.
class FactorModelTrainer : public Trainer {
 public:
  /// The fitted model; null before Train().
  const FactorModel* model() const { return model_.get(); }

  void ScoreItems(UserId u, std::vector<double>* scores) const override {
    model_->ScoreAllItems(u, scores);
  }

  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const override {
    model_->ScoreItemRange(u, begin, end, scores);
  }

 protected:
  std::unique_ptr<FactorModel> model_;
};

}  // namespace clapf

#endif  // CLAPF_CORE_TRAINER_H_
