#include "clapf/core/trainer_factory.h"

#include "clapf/baselines/gbpr.h"
#include "clapf/baselines/pop_rank.h"
#include "clapf/util/logging.h"
#include "clapf/util/string_util.h"

namespace clapf {

std::vector<MethodKind> AllMethods() {
  return {MethodKind::kPopRank,      MethodKind::kRandomWalk,
          MethodKind::kWmf,          MethodKind::kBpr,
          MethodKind::kMpr,          MethodKind::kClimf,
          MethodKind::kNeuMf,        MethodKind::kNeuPr,
          MethodKind::kDeepIcf,      MethodKind::kClapfMap,
          MethodKind::kClapfMrr,     MethodKind::kClapfPlusMap,
          MethodKind::kClapfPlusMrr};
}

std::vector<MethodKind> AllMethodsWithExtensions() {
  std::vector<MethodKind> methods = AllMethods();
  methods.push_back(MethodKind::kGbpr);
  methods.push_back(MethodKind::kClapfNdcg);
  return methods;
}

std::string MethodName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kPopRank:
      return "PopRank";
    case MethodKind::kRandomWalk:
      return "RandomWalk";
    case MethodKind::kWmf:
      return "WMF";
    case MethodKind::kBpr:
      return "BPR";
    case MethodKind::kMpr:
      return "MPR";
    case MethodKind::kClimf:
      return "CLiMF";
    case MethodKind::kNeuMf:
      return "NeuMF";
    case MethodKind::kNeuPr:
      return "NeuPR";
    case MethodKind::kDeepIcf:
      return "DeepICF";
    case MethodKind::kClapfMap:
      return "CLAPF-MAP";
    case MethodKind::kClapfMrr:
      return "CLAPF-MRR";
    case MethodKind::kClapfPlusMap:
      return "CLAPF+-MAP";
    case MethodKind::kClapfPlusMrr:
      return "CLAPF+-MRR";
    case MethodKind::kGbpr:
      return "GBPR";
    case MethodKind::kClapfNdcg:
      return "CLAPF-NDCG";
  }
  return "?";
}

Result<MethodKind> ParseMethodName(const std::string& name) {
  const std::string key = ToLower(name);
  for (MethodKind kind : AllMethodsWithExtensions()) {
    if (ToLower(MethodName(kind)) == key) return kind;
  }
  return Status::NotFound("unknown method: " + name);
}

std::unique_ptr<Trainer> MakeTrainer(MethodKind kind,
                                     const MethodConfig& config) {
  switch (kind) {
    case MethodKind::kPopRank:
      return std::make_unique<PopRankTrainer>();
    case MethodKind::kRandomWalk:
      return std::make_unique<RandomWalkTrainer>(config.random_walk);
    case MethodKind::kWmf:
      return std::make_unique<WmfTrainer>(config.wmf);
    case MethodKind::kBpr: {
      BprOptions opts;
      opts.sgd = config.sgd;
      return std::make_unique<BprTrainer>(opts);
    }
    case MethodKind::kMpr: {
      MprOptions opts;
      opts.sgd = config.sgd;
      opts.rho = config.mpr_rho;
      return std::make_unique<MprTrainer>(opts);
    }
    case MethodKind::kClimf:
      return std::make_unique<ClimfTrainer>(config.climf);
    case MethodKind::kNeuMf:
      return std::make_unique<NeuMfTrainer>(config.neumf);
    case MethodKind::kNeuPr:
      return std::make_unique<NeuPrTrainer>(config.neupr);
    case MethodKind::kDeepIcf:
      return std::make_unique<DeepIcfTrainer>(config.deepicf);
    case MethodKind::kGbpr: {
      GbprOptions opts;
      opts.sgd = config.sgd;
      opts.rho = config.gbpr_rho;
      opts.group_size = config.gbpr_group_size;
      return std::make_unique<GbprTrainer>(opts);
    }
    case MethodKind::kClapfMap:
    case MethodKind::kClapfMrr:
    case MethodKind::kClapfNdcg:
    case MethodKind::kClapfPlusMap:
    case MethodKind::kClapfPlusMrr: {
      ClapfOptions opts;
      opts.sgd = config.sgd;
      opts.lambda = config.clapf_lambda;
      if (kind == MethodKind::kClapfMap || kind == MethodKind::kClapfPlusMap) {
        opts.variant = ClapfVariant::kMap;
      } else if (kind == MethodKind::kClapfNdcg) {
        opts.variant = ClapfVariant::kNdcg;
      } else {
        opts.variant = ClapfVariant::kMrr;
      }
      opts.sampler = (kind == MethodKind::kClapfPlusMap ||
                      kind == MethodKind::kClapfPlusMrr)
                         ? ClapfSamplerKind::kDss
                         : ClapfSamplerKind::kUniform;
      opts.dss_tail_fraction = config.dss_tail_fraction;
      return std::make_unique<ClapfTrainer>(opts);
    }
  }
  CLAPF_CHECK(false) << "unhandled method kind";
  return nullptr;
}

}  // namespace clapf
