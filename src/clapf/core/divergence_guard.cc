#include "clapf/core/divergence_guard.h"

#include <cmath>
#include <string>

#include "clapf/util/logging.h"

namespace clapf {

namespace {

bool AllHealthy(const std::vector<double>& v, double bound) {
  for (double x : v) {
    // Negated comparison is NaN-safe: NaN fails <= and lands here.
    if (!(std::fabs(x) <= bound)) return false;
  }
  return true;
}

void ClampVector(std::vector<double>* v, double bound) {
  for (double& x : *v) {
    if (!std::isfinite(x)) {
      x = 0.0;
    } else if (x > bound) {
      x = bound;
    } else if (x < -bound) {
      x = -bound;
    }
  }
}

}  // namespace

DivergenceGuard::DivergenceGuard(const DivergenceOptions& options,
                                 FactorModel* model)
    : options_(options), model_(model) {
  if (options_.policy == DivergencePolicy::kRollback) TakeSnapshot();
}

bool DivergenceGuard::ValueUnhealthy(double v) const {
  // True for NaN as well: NaN fails every comparison.
  return !(std::fabs(v) <= options_.max_abs_margin);
}

bool DivergenceGuard::ModelHealthy() const {
  const double bound = options_.max_abs_factor;
  return AllHealthy(model_->user_factor_data(), bound) &&
         AllHealthy(model_->item_factor_data(), bound) &&
         AllHealthy(model_->item_bias_data(), bound);
}

void DivergenceGuard::TakeSnapshot() {
  snap_user_ = model_->user_factor_data();
  snap_item_ = model_->item_factor_data();
  snap_bias_ = model_->item_bias_data();
}

void DivergenceGuard::RestoreSnapshot() {
  model_->mutable_user_factor_data() = snap_user_;
  model_->mutable_item_factor_data() = snap_item_;
  model_->mutable_item_bias_data() = snap_bias_;
}

void DivergenceGuard::ClampModel() {
  const double bound = options_.max_abs_factor;
  ClampVector(&model_->mutable_user_factor_data(), bound);
  ClampVector(&model_->mutable_item_factor_data(), bound);
  ClampVector(&model_->mutable_item_bias_data(), bound);
}

DivergenceGuard::Action DivergenceGuard::HandleDivergence(int64_t iteration,
                                                          const char* what) {
  switch (options_.policy) {
    case DivergencePolicy::kOff:
      return Action::kProceed;
    case DivergencePolicy::kHalt:
      status_ = Status::Internal("divergence detected at iteration " +
                                 std::to_string(iteration) + " (" + what + ")");
      return Action::kHalt;
    case DivergencePolicy::kClamp:
      ++clamps_;
      CLAPF_LOG(Warning) << "divergence at iteration " << iteration << " ("
                         << what << "): clamping parameters";
      ClampModel();
      return Action::kSkipUpdate;
    case DivergencePolicy::kRollback:
      if (retries_ >= options_.max_retries) {
        status_ = Status::Internal(
            "divergence at iteration " + std::to_string(iteration) + " (" +
            what + ") after " + std::to_string(retries_) +
            " rollbacks; giving up");
        return Action::kHalt;
      }
      ++retries_;
      ++rollbacks_;
      lr_scale_ *= options_.lr_backoff;
      CLAPF_LOG(Warning) << "divergence at iteration " << iteration << " ("
                         << what << "): rolling back, lr scale now "
                         << lr_scale_ << " (retry " << retries_ << "/"
                         << options_.max_retries << ")";
      RestoreSnapshot();
      return Action::kSkipUpdate;
  }
  return Action::kProceed;
}

DivergenceGuard::Action DivergenceGuard::Observe(int64_t iteration,
                                                 double value) {
  if (options_.policy == DivergencePolicy::kOff) return Action::kProceed;
  if (ValueUnhealthy(value)) {
    return HandleDivergence(iteration, "unhealthy update margin");
  }
  if (options_.check_interval > 0 &&
      iteration % options_.check_interval == 0) {
    if (!ModelHealthy()) return HandleDivergence(iteration, "factor scan");
    // Only a verified-healthy model becomes the rollback target.
    if (options_.policy == DivergencePolicy::kRollback) TakeSnapshot();
  }
  return Action::kProceed;
}

DivergenceGuard::Action DivergenceGuard::ObserveBarrier(int64_t iteration,
                                                        bool saw_bad_value) {
  if (options_.policy == DivergencePolicy::kOff) return Action::kProceed;
  if (saw_bad_value) {
    Action action = HandleDivergence(iteration, "unhealthy update margin");
    // Clamp/rollback already repaired the model; the run continues.
    return action == Action::kHalt ? action : Action::kProceed;
  }
  if (!ModelHealthy()) {
    Action action = HandleDivergence(iteration, "factor scan");
    return action == Action::kHalt ? action : Action::kProceed;
  }
  if (options_.policy == DivergencePolicy::kRollback) TakeSnapshot();
  return Action::kProceed;
}

void DivergenceGuard::RestoreBackoff(double lr_scale, int32_t retries) {
  lr_scale_ = lr_scale;
  retries_ = retries;
}

}  // namespace clapf
