#ifndef CLAPF_CORE_CLAPF_TRAINER_H_
#define CLAPF_CORE_CLAPF_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "clapf/core/checkpoint.h"
#include "clapf/core/trainer.h"
#include "clapf/sampling/dss_sampler.h"
#include "clapf/sampling/sampler.h"
#include "clapf/util/status.h"

namespace clapf {

/// Which sampler feeds the CLAPF SGD loop (paper §5 / Fig. 4 ablation):
/// kUniform = CLAPF, kDss = CLAPF+; the partial samplers isolate the two
/// adaptive halves of DSS.
enum class ClapfSamplerKind { kUniform, kDss, kPositiveOnly, kNegativeOnly };

/// Full configuration of a CLAPF run.
struct ClapfOptions {
  SgdOptions sgd;
  /// CLAPF-MAP or CLAPF-MRR (Eqs. 18 / 21).
  ClapfVariant variant = ClapfVariant::kMap;
  /// Tradeoff λ ∈ [0, 1] fusing the listwise pair with the pairwise pair;
  /// λ = 0 reduces CLAPF to BPR exactly.
  double lambda = 0.4;
  ClapfSamplerKind sampler = ClapfSamplerKind::kUniform;
  /// Geometric/refresh knobs for the adaptive samplers (variant and the
  /// adaptive_{positive,negative} switches are set automatically).
  double dss_tail_fraction = 0.2;
  int64_t dss_refresh_interval = 0;
  /// Periodic crash-safe snapshots + resume-from-newest-valid-checkpoint.
  /// With the uniform sampler a resumed run is bit-identical to an
  /// uninterrupted one (the sample stream is replayed deterministically);
  /// adaptive samplers resume correctly but not bit-exactly, since their
  /// draws depend on the evolving model.
  CheckpointOptions checkpoint;
};

/// Collaborative List-and-Pairwise Filtering (paper §4): matrix factorization
/// trained by SGD on sampled triples (u, i, k, j) with the fused objective
///   max Σ ln σ(R_{≻u}) − regularization,
/// where R_{≻u} is the λ-weighted combination of the listwise margin between
/// two observed items and the pairwise margin between an observed and an
/// unobserved item.
class ClapfTrainer : public FactorModelTrainer {
 public:
  explicit ClapfTrainer(const ClapfOptions& options);

  /// Runs T SGD iterations. Returns InvalidArgument for a malformed config
  /// or a dataset without trainable users.
  Status Train(const Dataset& train) override;

  /// "CLAPF-MAP", "CLAPF+-MRR", ... ("+" when the DSS sampler is active).
  std::string name() const override;

  const ClapfOptions& options() const { return options_; }

  /// Average per-triple loss −ln σ(R_{≻u}) over the last trained epoch-sized
  /// window (diagnostics).
  double last_average_loss() const { return last_average_loss_; }

 private:
  /// Builds one sampler instance seeded with `seed`; parallel training calls
  /// this once per worker for independent streams.
  std::unique_ptr<TripleSampler> MakeSampler(const Dataset& train,
                                             uint64_t seed) const;

  ClapfOptions options_;
  double last_average_loss_ = 0.0;
};

}  // namespace clapf

#endif  // CLAPF_CORE_CLAPF_TRAINER_H_
