#include "clapf/core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "clapf/model/model_io.h"
#include "clapf/util/crc32.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/fs.h"
#include "clapf/util/logging.h"
#include "clapf/util/string_util.h"

namespace clapf {

namespace {

constexpr char kCheckpointMagic[4] = {'C', 'K', 'P', 'T'};
constexpr uint32_t kCheckpointVersion = 1;
constexpr char kManifestName[] = "MANIFEST";

std::string CheckpointFileName(int64_t iteration) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%012lld.ckpt",
                static_cast<long long>(iteration));
  return buf;
}

template <typename T>
void WritePod(std::ostream& out, const T& value, uint32_t* crc) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  *crc = Crc32Update(*crc, &value, sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value, uint32_t* crc) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!in) return false;
  *crc = Crc32Update(*crc, value, sizeof(T));
  return true;
}

}  // namespace

CheckpointManager::CheckpointManager(const CheckpointOptions& options)
    : options_(options) {}

Status CheckpointManager::Init() {
  if (!enabled()) return Status::OK();
  CLAPF_RETURN_IF_ERROR(CreateDirs(options_.dir));
  entries_.clear();

  const std::string manifest_path = options_.dir + "/" + kManifestName;
  if (PathExists(manifest_path)) {
    auto contents = ReadFileToString(manifest_path);
    if (!contents.ok()) return contents.status();
    for (const std::string& line : Split(*contents, '\n')) {
      std::string name(Trim(line));
      if (!name.empty()) entries_.push_back(std::move(name));
    }
    return Status::OK();
  }

  // No manifest (first run, or it was lost): fall back to scanning the
  // directory so orphaned checkpoints are still discoverable.
  auto names = ListDir(options_.dir);
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    if (name.starts_with("ckpt-") && name.ends_with(".ckpt")) {
      entries_.push_back(name);
    }
  }
  return Status::OK();
}

Status CheckpointManager::WriteManifest() const {
  std::string contents;
  for (const std::string& name : entries_) {
    contents += name;
    contents += '\n';
  }
  return WriteFileAtomic(options_.dir + "/" + kManifestName, contents);
}

void CheckpointManager::Prune() {
  const int32_t keep = std::max(options_.keep_last, 1);
  while (entries_.size() > static_cast<size_t>(keep)) {
    const std::string victim = options_.dir + "/" + entries_.front();
    if (Status s = RemoveFileIfExists(victim); !s.ok()) {
      CLAPF_LOG(Warning) << "cannot prune checkpoint " << victim << ": "
                         << s.ToString();
    }
    entries_.erase(entries_.begin());
  }
}

Status CheckpointManager::Write(const FactorModel& model,
                                const TrainerCheckpointState& state) {
  if (!enabled()) {
    return Status::FailedPrecondition("checkpointing is not configured");
  }

  std::ostringstream out(std::ios::binary);
  uint32_t crc = Crc32Init();
  out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  WritePod(out, kCheckpointVersion, &crc);
  WritePod(out, state.iteration, &crc);
  WritePod(out, state.seed, &crc);
  WritePod(out, state.lr_scale, &crc);
  WritePod(out, state.guard_retries, &crc);
  WritePod(out, state.loss_acc, &crc);
  WritePod(out, state.loss_count, &crc);
  const uint32_t state_crc = Crc32Finalize(crc);
  out.write(reinterpret_cast<const char*>(&state_crc), sizeof(state_crc));
  CLAPF_RETURN_IF_ERROR(SaveModelToStream(model, out));

  std::string payload = std::move(out).str();
  FaultInjector& faults = FaultInjector::Instance();
  if (faults.armed()) faults.MutateModelPayload(&payload);

  const std::string name = CheckpointFileName(state.iteration);
  CLAPF_RETURN_IF_ERROR(WriteFileAtomic(options_.dir + "/" + name, payload,
                                        FaultPoint::kModelRename));

  // Re-writing the same iteration (e.g. resume overlap) must not duplicate.
  entries_.erase(std::remove(entries_.begin(), entries_.end(), name),
                 entries_.end());
  entries_.push_back(name);
  Prune();
  return WriteManifest();
}

Result<LoadedCheckpoint> CheckpointManager::ReadCheckpointFile(
    const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  std::istringstream in(*contents, std::ios::binary);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return Status::Corruption("bad checkpoint magic in " + path);
  }
  uint32_t crc = Crc32Init();
  uint32_t version = 0;
  TrainerCheckpointState state;
  if (!ReadPod(in, &version, &crc) || version != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version in " + path);
  }
  if (!ReadPod(in, &state.iteration, &crc) || !ReadPod(in, &state.seed, &crc) ||
      !ReadPod(in, &state.lr_scale, &crc) ||
      !ReadPod(in, &state.guard_retries, &crc) ||
      !ReadPod(in, &state.loss_acc, &crc) ||
      !ReadPod(in, &state.loss_count, &crc)) {
    return Status::Corruption("truncated checkpoint state in " + path);
  }
  uint32_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in || stored != Crc32Finalize(crc)) {
    return Status::Corruption("checkpoint state checksum mismatch in " + path);
  }

  auto model = LoadModelFromStream(in, path);
  if (!model.ok()) return model.status();
  return LoadedCheckpoint{std::move(*model), state};
}

Result<LoadedCheckpoint> CheckpointManager::LoadLatest() const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const std::string path = options_.dir + "/" + *it;
    auto loaded = ReadCheckpointFile(path);
    if (loaded.ok()) return loaded;
    CLAPF_LOG(Warning) << "skipping invalid checkpoint " << path << ": "
                       << loaded.status().ToString();
  }
  return Status::NotFound("no valid checkpoint in " + options_.dir);
}

}  // namespace clapf
