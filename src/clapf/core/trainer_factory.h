#ifndef CLAPF_CORE_TRAINER_FACTORY_H_
#define CLAPF_CORE_TRAINER_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "clapf/baselines/bpr.h"
#include "clapf/baselines/climf.h"
#include "clapf/baselines/deep_icf.h"
#include "clapf/baselines/mpr.h"
#include "clapf/baselines/neu_mf.h"
#include "clapf/baselines/neu_pr.h"
#include "clapf/baselines/random_walk.h"
#include "clapf/baselines/wmf.h"
#include "clapf/core/clapf_trainer.h"
#include "clapf/core/trainer.h"
#include "clapf/util/status.h"

namespace clapf {

/// Every method evaluated in the paper's Table 2, plus the CLAPF+ variants.
enum class MethodKind {
  kPopRank,
  kRandomWalk,
  kWmf,
  kBpr,
  kMpr,
  kClimf,
  kNeuMf,
  kNeuPr,
  kDeepIcf,
  kClapfMap,       // CLAPF-MAP, uniform sampler
  kClapfMrr,       // CLAPF-MRR, uniform sampler
  kClapfPlusMap,   // CLAPF+-MAP, DSS sampler
  kClapfPlusMrr,   // CLAPF+-MRR, DSS sampler
  // Extensions beyond the paper's Table 2:
  kGbpr,           // Group BPR (Pan & Chen 2013), cited in §2.1
  kClapfNdcg,      // CLAPF-NDCG, this library's smoothed-NDCG instantiation
};

/// All methods in the paper's Table 2 row order (extensions excluded).
std::vector<MethodKind> AllMethods();

/// Table 2 methods plus the extension methods (GBPR, CLAPF-NDCG).
std::vector<MethodKind> AllMethodsWithExtensions();

/// Display name matching the paper ("PopRank", "CLAPF-MAP", ...).
std::string MethodName(MethodKind kind);

/// Parses a method name, case-insensitively ("clapf-map", "bpr", ...).
Result<MethodKind> ParseMethodName(const std::string& name);

/// One configuration bag covering every method; each trainer reads only its
/// own section. The benchmark harness fills this from presets/flags.
struct MethodConfig {
  SgdOptions sgd;              // MF SGD methods (BPR/MPR/CLAPF/GBPR)
  double clapf_lambda = 0.4;   // λ for CLAPF (paper tunes per dataset)
  double mpr_rho = 0.5;
  double gbpr_rho = 0.6;       // group-vs-individual weight for GBPR
  int32_t gbpr_group_size = 3;
  ClimfOptions climf;
  WmfOptions wmf;
  RandomWalkOptions random_walk;
  NeuMfOptions neumf;
  NeuPrOptions neupr;
  DeepIcfOptions deepicf;
  double dss_tail_fraction = 0.2;
};

/// Instantiates a trainer for `kind` configured from `config`.
std::unique_ptr<Trainer> MakeTrainer(MethodKind kind,
                                     const MethodConfig& config);

}  // namespace clapf

#endif  // CLAPF_CORE_TRAINER_FACTORY_H_
