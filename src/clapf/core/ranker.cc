#include "clapf/core/ranker.h"

#include <atomic>

#include "clapf/obs/metrics.h"
#include "clapf/util/logging.h"

namespace clapf {

void NoteRankerRangeFallback() {
  // The counter is maintained in every build type (the fallback path is
  // already a full rescan, so one registry lookup is noise); the log line is
  // debug-only and fires once per process to avoid flooding.
  MetricsRegistry::Default()
      .GetCounter("ranker.range_fallback_total")
      ->Inc();
#ifndef NDEBUG
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    CLAPF_LOG(Warning)
        << "Ranker::ScoreItemRange base fallback fired: a ranker without a "
           "range override rescans the whole catalog per block, defeating "
           "deadline polling (see ranker.range_fallback_total)";
  }
#endif
}

}  // namespace clapf
