#ifndef CLAPF_CORE_DIVERGENCE_GUARD_H_
#define CLAPF_CORE_DIVERGENCE_GUARD_H_

#include <cstdint>
#include <vector>

#include "clapf/model/factor_model.h"
#include "clapf/util/status.h"

namespace clapf {

/// Reaction when the guard detects NaN/Inf or exploding parameters.
enum class DivergencePolicy {
  /// No monitoring; the guard's per-iteration cost is one branch.
  kOff,
  /// Stop training and surface Status::Internal to the caller.
  kHalt,
  /// Restore the last healthy parameter snapshot, multiply the learning rate
  /// by `lr_backoff`, and keep training; after `max_retries` rollbacks, halt.
  kRollback,
  /// Replace non-finite parameters with zero, clamp the rest into
  /// [-max_abs_factor, max_abs_factor], skip the poisoned update, continue.
  kClamp,
};

/// Numerical-health monitoring knobs for the SGD trainers. The defaults keep
/// the guard off so the hot loop is untouched unless a caller opts in.
struct DivergenceOptions {
  DivergencePolicy policy = DivergencePolicy::kOff;
  /// A per-iteration health value (the SGD margin) with |value| above this —
  /// or NaN — counts as divergence. Healthy BPR/CLAPF margins are O(10).
  double max_abs_margin = 1e4;
  /// Bound checked against every parameter during the periodic full scan.
  double max_abs_factor = 1e3;
  /// Every `check_interval` iterations the guard scans all parameters and,
  /// under kRollback, refreshes its healthy snapshot. <= 0 disables the scan
  /// (the per-iteration margin check still runs).
  int64_t check_interval = 4096;
  /// Multiplicative learning-rate backoff applied on each rollback.
  double lr_backoff = 0.5;
  /// Rollbacks allowed before the guard gives up and halts.
  int32_t max_retries = 8;
};

/// Watches an SGD run for numerical divergence — NaN/Inf margins, exploding
/// factors — and reacts per the configured policy. Designed for the hot
/// loop: the per-iteration cost is one fabs + compare (plus one branch when
/// off); the O(model) scan and snapshot run only every `check_interval`
/// iterations.
///
/// Usage inside a trainer loop:
///   DivergenceGuard guard(options.divergence, model.get());
///   for (it = 1; it <= T; ++it) {
///     double lr = schedule(it) * guard.lr_scale();
///     double margin = ...;
///     switch (guard.Observe(it, margin)) {
///       case DivergenceGuard::Action::kHalt: return guard.status();
///       case DivergenceGuard::Action::kSkipUpdate: continue;
///       case DivergenceGuard::Action::kProceed: break;
///     }
///     ... apply the SGD update ...
///   }
class DivergenceGuard {
 public:
  /// What the trainer must do after an Observe call.
  enum class Action {
    kProceed,     // healthy: apply the update
    kSkipUpdate,  // parameters were rolled back or clamped: resample
    kHalt,        // unrecoverable: return status() from Train
  };

  /// `model` must outlive the guard. Under kRollback an initial snapshot is
  /// taken immediately so divergence before the first periodic scan can
  /// still roll back (to the initialization).
  DivergenceGuard(const DivergenceOptions& options, FactorModel* model);

  /// Reports the health value of iteration `iteration` (1-based). Call once
  /// per SGD step, before applying the update derived from `value`.
  Action Observe(int64_t iteration, double value);

  /// Barrier-mode observation for parallel SGD: workers only run the cheap
  /// local margin check (skipping poisoned updates and flagging them), and
  /// the policy machinery — clamp, rollback, snapshot refresh, halt — runs
  /// here once per synchronization round while every worker is parked, so it
  /// can touch the whole model race-free. `saw_bad_value` is the OR of the
  /// workers' margin flags since the previous barrier. Never returns
  /// kSkipUpdate: recovery already happened, the round either proceeds or
  /// halts.
  Action ObserveBarrier(int64_t iteration, bool saw_bad_value);

  /// Current learning-rate multiplier (1.0 until a rollback backs it off).
  /// Trainers fold this into their per-iteration rate.
  double lr_scale() const { return lr_scale_; }

  /// The failure surfaced when Observe returns kHalt.
  const Status& status() const { return status_; }

  /// Counters for logging and tests.
  int64_t rollbacks() const { return rollbacks_; }
  int64_t clamps() const { return clamps_; }

  /// Restores backoff state recovered from a checkpoint so a resumed run
  /// continues with the same effective learning rate.
  void RestoreBackoff(double lr_scale, int32_t retries);

 private:
  bool ValueUnhealthy(double v) const;
  bool ModelHealthy() const;
  void TakeSnapshot();
  void RestoreSnapshot();
  void ClampModel();
  Action HandleDivergence(int64_t iteration, const char* what);

  DivergenceOptions options_;
  FactorModel* model_;
  Status status_;
  double lr_scale_ = 1.0;
  int32_t retries_ = 0;
  int64_t rollbacks_ = 0;
  int64_t clamps_ = 0;
  // Healthy parameter snapshot for kRollback.
  std::vector<double> snap_user_;
  std::vector<double> snap_item_;
  std::vector<double> snap_bias_;
};

}  // namespace clapf

#endif  // CLAPF_CORE_DIVERGENCE_GUARD_H_
