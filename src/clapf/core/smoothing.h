#ifndef CLAPF_CORE_SMOOTHING_H_
#define CLAPF_CORE_SMOOTHING_H_

#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/sampling/dss_sampler.h"  // ClapfVariant

namespace clapf {

/// The paper's smoothed rank-biased quantities (§3.3 and §4.1). These are
/// analysis/verification tools: training optimizes the sampled lower-bound
/// objectives, while tests use these functions to check the smoothing and
/// lower-bound derivations (Eqs. 6, 9, 7, 12, 11).

/// Smoothed Reciprocal Rank, Eq. (6):
///   RR_u = Σ_i Y_ui σ(f_ui) Π_k (1 − Y_uk σ(f_uk − f_ui)).
double SmoothedReciprocalRank(const FactorModel& model, const Dataset& data,
                              UserId u);

/// Smoothed Average Precision, Eq. (9):
///   AP_u = (1/n_u⁺) Σ_i Y_ui σ(f_ui) Σ_k Y_uk σ(f_uk − f_ui).
double SmoothedAveragePrecision(const FactorModel& model, const Dataset& data,
                                UserId u);

/// CLiMF lower-bound objective for one user, Eq. (7):
///   L = Σ_{i∈I⁺} ln σ(f_ui) + Σ_{i,k∈I⁺,k≠i} ln σ(f_ui − f_uk).
double ClimfLowerBound(const FactorModel& model, const Dataset& data,
                       UserId u);

/// Smoothed-MAP lower-bound objective for one user, Eq. (12):
///   L = Σ_{i∈I⁺} ln σ(f_ui) + Σ_{i,k∈I⁺,k≠i} ln σ(f_uk − f_ui).
double MapLowerBound(const FactorModel& model, const Dataset& data, UserId u);

/// The fused CLAPF ranking margin R_{≻u} (Eqs. 16 / 19) for one sampled
/// triple: MAP uses λ(f_uk − f_ui) + (1−λ)(f_ui − f_uj); MRR uses
/// λ(f_ui − f_uk) + (1−λ)(f_ui − f_uj).
double ClapfMargin(ClapfVariant variant, double lambda, double f_ui,
                   double f_uk, double f_uj);

/// Per-triple CLAPF loss −ln σ(R_{≻u}) without regularization.
double ClapfTripleLoss(ClapfVariant variant, double lambda, double f_ui,
                       double f_uk, double f_uj);

/// Exact full objective ln CLAPF (Eq. 18 / 21) summed over every
/// (i, k, j) combination — O(n·n_u²·(m−n_u)), only for tiny test datasets.
double ExactClapfLogLikelihood(const FactorModel& model, const Dataset& data,
                               ClapfVariant variant, double lambda);

}  // namespace clapf

#endif  // CLAPF_CORE_SMOOTHING_H_
