#ifndef CLAPF_CORE_RANKER_H_
#define CLAPF_CORE_RANKER_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"

namespace clapf {

/// Items scored per block in serving scans. Deadline-aware queries poll the
/// clock (and the fault injector) between blocks, so a query can overrun its
/// budget by at most one block's scoring cost.
inline constexpr int32_t kRankerBlockItems = 1024;

/// Serving-safe list length: a request for more items than the catalog holds
/// returns the full ranked catalog instead of relying on every caller to
/// bound k themselves.
inline size_t ClampK(size_t k, int32_t num_items) {
  return std::min(k, static_cast<size_t>(std::max<int32_t>(num_items, 0)));
}

/// Anything that can score every item for a user. Trainers and models
/// implement this so the Evaluator can rank them uniformly. Lives in core/
/// (not eval/) because it is the seam between the two layers: trainers
/// produce Rankers, the evaluator consumes them.
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Fills `scores` (resized to the item count) with the predicted relevance
  /// of every item for user `u`. Higher is better.
  virtual void ScoreItems(UserId u, std::vector<double>* scores) const = 0;

  /// Scores only items [begin, end) into (*scores)[begin..end); `scores`
  /// must already be sized to the item count. The base implementation
  /// rescans everything (correct, but defeats block-granular deadline
  /// polling); rankers with a true range kernel override it.
  virtual void ScoreItemRange(UserId u, ItemId /*begin*/, ItemId /*end*/,
                              std::vector<double>* scores) const {
    ScoreItems(u, scores);
  }
};

/// Adapts a FactorModel to the Ranker interface.
class FactorModelRanker : public Ranker {
 public:
  /// `model` must outlive the ranker.
  explicit FactorModelRanker(const FactorModel* model) : model_(model) {}

  void ScoreItems(UserId u, std::vector<double>* scores) const override {
    model_->ScoreAllItems(u, scores);
  }

  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const override {
    model_->ScoreItemRange(u, begin, end, scores);
  }

 private:
  const FactorModel* model_;
};

}  // namespace clapf

#endif  // CLAPF_CORE_RANKER_H_
