#ifndef CLAPF_CORE_RANKER_H_
#define CLAPF_CORE_RANKER_H_

#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"

namespace clapf {

/// Anything that can score every item for a user. Trainers and models
/// implement this so the Evaluator can rank them uniformly. Lives in core/
/// (not eval/) because it is the seam between the two layers: trainers
/// produce Rankers, the evaluator consumes them.
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Fills `scores` (resized to the item count) with the predicted relevance
  /// of every item for user `u`. Higher is better.
  virtual void ScoreItems(UserId u, std::vector<double>* scores) const = 0;
};

/// Adapts a FactorModel to the Ranker interface.
class FactorModelRanker : public Ranker {
 public:
  /// `model` must outlive the ranker.
  explicit FactorModelRanker(const FactorModel* model) : model_(model) {}

  void ScoreItems(UserId u, std::vector<double>* scores) const override {
    model_->ScoreAllItems(u, scores);
  }

 private:
  const FactorModel* model_;
};

}  // namespace clapf

#endif  // CLAPF_CORE_RANKER_H_
