#ifndef CLAPF_CORE_RANKER_H_
#define CLAPF_CORE_RANKER_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/model/packed_snapshot.h"

namespace clapf {

/// Items scored per block in serving scans. Deadline-aware queries poll the
/// clock (and the fault injector) between blocks, so a query can overrun its
/// budget by at most one block's scoring cost.
inline constexpr int32_t kRankerBlockItems = 1024;

/// Serving-safe list length: a request for more items than the catalog holds
/// returns the full ranked catalog instead of relying on every caller to
/// bound k themselves.
inline size_t ClampK(size_t k, int32_t num_items) {
  return std::min(k, static_cast<size_t>(std::max<int32_t>(num_items, 0)));
}

/// Bumps `ranker.range_fallback_total` in the default metrics registry (and,
/// in debug builds, logs a one-shot warning). Fired by the base
/// Ranker::ScoreItemRange, whose whole-catalog rescan silently defeats
/// block-granular deadline polling — a non-zero counter means a ranker is
/// missing a real range override.
void NoteRankerRangeFallback();

/// Anything that can score every item for a user. Trainers and models
/// implement this so the Evaluator can rank them uniformly. Lives in core/
/// (not eval/) because it is the seam between the two layers: trainers
/// produce Rankers, the evaluator consumes them.
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Fills `scores` (resized to the item count) with the predicted relevance
  /// of every item for user `u`. Higher is better.
  virtual void ScoreItems(UserId u, std::vector<double>* scores) const = 0;

  /// Scores only items [begin, end) into (*scores)[begin..end); `scores`
  /// must already be sized to the item count. The base implementation
  /// rescans everything (correct, but defeats block-granular deadline
  /// polling) and reports itself via NoteRankerRangeFallback(); every
  /// in-tree ranker overrides it with a true range kernel.
  virtual void ScoreItemRange(UserId u, ItemId /*begin*/, ItemId /*end*/,
                              std::vector<double>* scores) const {
    NoteRankerRangeFallback();
    ScoreItems(u, scores);
  }
};

/// Adapts a FactorModel to the Ranker interface. Optionally carries a
/// PackedSnapshot of the same model; when present, scoring runs the SIMD
/// packed fast path (approximate within PackedScoreBound) instead of the
/// exact double scan — this is how the serving canary probe and evaluators
/// opt into packed inference.
class FactorModelRanker : public Ranker {
 public:
  /// Exact mode. `model` must outlive the ranker.
  explicit FactorModelRanker(const FactorModel* model) : model_(model) {}

  /// Packed mode: scores come from `packed` (built from `model`); `packed`
  /// may be null, which degrades to exact mode. Both must outlive the
  /// ranker.
  FactorModelRanker(const FactorModel* model, const PackedSnapshot* packed)
      : model_(model), packed_(packed) {}

  void ScoreItems(UserId u, std::vector<double>* scores) const override {
    if (packed_ != nullptr) {
      scores->resize(static_cast<size_t>(packed_->num_items()));
      packed_->ScoreItemRange(u, 0, packed_->num_items(), scores);
      return;
    }
    model_->ScoreAllItems(u, scores);
  }

  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const override {
    if (packed_ != nullptr) {
      packed_->ScoreItemRange(u, begin, end, scores);
      return;
    }
    model_->ScoreItemRange(u, begin, end, scores);
  }

  /// True when scoring runs off the packed snapshot.
  bool packed() const { return packed_ != nullptr; }

 private:
  const FactorModel* model_;
  const PackedSnapshot* packed_ = nullptr;
};

}  // namespace clapf

#endif  // CLAPF_CORE_RANKER_H_
