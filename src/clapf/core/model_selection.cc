#include "clapf/core/model_selection.h"

#include "clapf/data/split.h"
#include "clapf/eval/evaluator.h"
#include "clapf/util/logging.h"

namespace clapf {

namespace {

double ExtractMetric(const EvalSummary& summary, SelectionMetric metric) {
  switch (metric) {
    case SelectionMetric::kNdcgAt5:
      return summary.AtK(5).ndcg;
    case SelectionMetric::kMap:
      return summary.map;
    case SelectionMetric::kMrr:
      return summary.mrr;
    case SelectionMetric::kPrecisionAt5:
      return summary.AtK(5).precision;
  }
  return 0.0;
}

}  // namespace

const char* SelectionMetricName(SelectionMetric metric) {
  switch (metric) {
    case SelectionMetric::kNdcgAt5:
      return "NDCG@5";
    case SelectionMetric::kMap:
      return "MAP";
    case SelectionMetric::kMrr:
      return "MRR";
    case SelectionMetric::kPrecisionAt5:
      return "Prec@5";
  }
  return "?";
}

Result<SelectionResult> SelectClapfOptions(
    const Dataset& train, const std::vector<ClapfOptions>& candidates,
    SelectionMetric metric, uint64_t seed) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidates to select from");
  }
  TrainValidationSplit holdout = HoldOutOnePerUser(train, seed);
  if (holdout.validation.num_interactions() == 0) {
    return Status::FailedPrecondition(
        "no user has enough items to hold out a validation pair");
  }
  Evaluator evaluator(&holdout.train, &holdout.validation);

  SelectionResult result;
  double best_score = -1.0;
  for (size_t idx = 0; idx < candidates.size(); ++idx) {
    ClapfTrainer trainer(candidates[idx]);
    CLAPF_RETURN_IF_ERROR(trainer.Train(holdout.train));
    const double score =
        ExtractMetric(evaluator.Evaluate(*trainer.model(), {5}), metric);
    result.trials.push_back(CandidateResult{candidates[idx], score});
    if (score > best_score) {
      best_score = score;
      result.best_index = idx;
    }
  }
  result.best_options = candidates[result.best_index];
  return result;
}

Result<SelectionResult> SelectLambda(const Dataset& train,
                                     const ClapfOptions& base,
                                     const std::vector<double>& lambdas,
                                     SelectionMetric metric, uint64_t seed) {
  std::vector<ClapfOptions> candidates;
  candidates.reserve(lambdas.size());
  for (double lambda : lambdas) {
    ClapfOptions options = base;
    options.lambda = lambda;
    candidates.push_back(options);
  }
  return SelectClapfOptions(train, candidates, metric, seed);
}

Result<SelectionResult> SelectIterations(
    const Dataset& train, const ClapfOptions& base,
    const std::vector<int64_t>& iteration_grid, SelectionMetric metric,
    uint64_t seed) {
  std::vector<ClapfOptions> candidates;
  candidates.reserve(iteration_grid.size());
  for (int64_t iterations : iteration_grid) {
    ClapfOptions options = base;
    options.sgd.iterations = iterations;
    candidates.push_back(options);
  }
  return SelectClapfOptions(train, candidates, metric, seed);
}

}  // namespace clapf
