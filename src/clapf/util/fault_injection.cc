#include "clapf/util/fault_injection.h"

#include "clapf/util/logging.h"

namespace clapf {

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kModelWriteShort:
      return "model-write-short";
    case FaultPoint::kModelWriteBitFlip:
      return "model-write-bit-flip";
    case FaultPoint::kModelRename:
      return "model-rename";
    case FaultPoint::kLoaderBadLine:
      return "loader-bad-line";
    case FaultPoint::kSgdStepNan:
      return "sgd-step-nan";
    case FaultPoint::kNumFaultPoints:
      break;
  }
  return "unknown";
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(FaultPoint point, FaultSpec spec) {
  PointState& s = state(point);
  if (!s.armed) ++num_armed_;
  s.armed = true;
  s.spec = spec;
  s.hits = 0;
  s.fires = 0;
}

void FaultInjector::Disarm(FaultPoint point) {
  PointState& s = state(point);
  if (s.armed) --num_armed_;
  s.armed = false;
}

void FaultInjector::Reset() {
  for (PointState& s : points_) s = PointState{};
  num_armed_ = 0;
}

bool FaultInjector::ShouldFire(FaultPoint point) {
  PointState& s = state(point);
  if (!s.armed) return false;
  ++s.hits;
  if (s.hits < s.spec.trigger_at_hit) return false;
  if (s.spec.max_fires >= 0 &&
      s.fires >= s.spec.max_fires) {
    return false;
  }
  ++s.fires;
  CLAPF_LOG(Warning) << "fault injected: " << FaultPointName(point)
                     << " (hit " << s.hits << ")";
  return true;
}

int64_t FaultInjector::hits(FaultPoint point) const {
  return state(point).hits;
}

int64_t FaultInjector::fires(FaultPoint point) const {
  return state(point).fires;
}

void FaultInjector::MutateModelPayload(std::string* payload) {
  if (payload->empty()) return;
  if (ShouldFire(FaultPoint::kModelWriteShort)) {
    payload->resize(payload->size() / 2);
  }
  if (!payload->empty() && ShouldFire(FaultPoint::kModelWriteBitFlip)) {
    // Flip one bit in the middle of the image — deep enough to land in the
    // parameter arrays rather than the header.
    (*payload)[payload->size() / 2] ^= 0x10;
  }
}

}  // namespace clapf
