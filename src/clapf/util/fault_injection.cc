#include "clapf/util/fault_injection.h"

#include "clapf/util/logging.h"

namespace clapf {

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kModelWriteShort:
      return "model-write-short";
    case FaultPoint::kModelWriteBitFlip:
      return "model-write-bit-flip";
    case FaultPoint::kModelRename:
      return "model-rename";
    case FaultPoint::kLoaderBadLine:
      return "loader-bad-line";
    case FaultPoint::kSgdStepNan:
      return "sgd-step-nan";
    case FaultPoint::kServeSlowBlock:
      return "serve-slow-block";
    case FaultPoint::kServeCorruptCandidate:
      return "serve-corrupt-candidate";
    case FaultPoint::kServeScoreNan:
      return "serve-score-nan";
    case FaultPoint::kServeQueueStall:
      return "serve-queue-stall";
    case FaultPoint::kWalAppendTorn:
      return "wal-append-torn";
    case FaultPoint::kWalFsyncFail:
      return "wal-fsync-fail";
    case FaultPoint::kWalRotateFail:
      return "wal-rotate-fail";
    case FaultPoint::kWalReplayCorrupt:
      return "wal-replay-corrupt";
    case FaultPoint::kAnnCorruptIndex:
      return "ann-corrupt-index";
    case FaultPoint::kAnnCorruptCodes:
      return "ann-corrupt-codes";
    case FaultPoint::kNumFaultPoints:
      break;
  }
  return "unknown";
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(FaultPoint point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  PointState& s = state(point);
  if (!s.armed) num_armed_.fetch_add(1, std::memory_order_relaxed);
  s.armed = true;
  s.spec = spec;
  s.hits = 0;
  s.fires = 0;
}

void FaultInjector::Disarm(FaultPoint point) {
  std::lock_guard<std::mutex> lock(mutex_);
  PointState& s = state(point);
  if (s.armed) num_armed_.fetch_sub(1, std::memory_order_relaxed);
  s.armed = false;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (PointState& s : points_) s = PointState{};
  num_armed_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFire(FaultPoint point) {
  int64_t hit_number = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PointState& s = state(point);
    if (!s.armed) return false;
    ++s.hits;
    if (s.hits < s.spec.trigger_at_hit) return false;
    if (s.spec.max_fires >= 0 && s.fires >= s.spec.max_fires) {
      return false;
    }
    ++s.fires;
    hit_number = s.hits;
  }
  CLAPF_LOG(Warning) << "fault injected: " << FaultPointName(point)
                     << " (hit " << hit_number << ")";
  return true;
}

int64_t FaultInjector::hits(FaultPoint point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state(point).hits;
}

int64_t FaultInjector::fires(FaultPoint point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state(point).fires;
}

void FaultInjector::MutateModelPayload(std::string* payload) {
  if (payload->empty()) return;
  if (ShouldFire(FaultPoint::kModelWriteShort)) {
    payload->resize(payload->size() / 2);
  }
  if (!payload->empty() && ShouldFire(FaultPoint::kModelWriteBitFlip)) {
    // Flip one bit in the middle of the image — deep enough to land in the
    // parameter arrays rather than the header.
    (*payload)[payload->size() / 2] ^= 0x10;
  }
}

}  // namespace clapf
