#include "clapf/util/csv.h"

#include <sstream>

namespace clapf {

Status CsvWriter::Open(const std::string& path) {
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) return Status::IoError("cannot open for write: " + path);
  return Status::OK();
}

std::string CsvWriter::Escape(const std::string& field) const {
  bool needs_quote = false;
  for (char c : field) {
    if (c == delim_ || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!out_.is_open()) return Status::FailedPrecondition("writer not open");
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << delim_;
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
  if (!out_) return Status::IoError("write failed");
  return Status::OK();
}

Status CsvWriter::Close() {
  if (out_.is_open()) {
    out_.close();
    if (out_.fail()) return Status::IoError("close failed");
  }
  return Status::OK();
}

std::vector<std::string> ParseCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, char delim) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    // Re-join lines while inside a quoted field.
    while (true) {
      size_t quotes = 0;
      for (char c : line) {
        if (c == '"') ++quotes;
      }
      if (quotes % 2 == 0) break;
      std::string next;
      if (!std::getline(in, next)) break;
      line += '\n';
      line += next;
    }
    rows.push_back(ParseCsvLine(line, delim));
  }
  return rows;
}

}  // namespace clapf
