#ifndef CLAPF_UTIL_MATH_H_
#define CLAPF_UTIL_MATH_H_

#include <cmath>

namespace clapf {

/// Logistic sigmoid 1 / (1 + e^-x), numerically stable for large |x|.
inline double Sigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// ln sigma(x) = -ln(1 + e^-x), stable for large |x|.
inline double LogSigmoid(double x) {
  if (x >= 0.0) return -std::log1p(std::exp(-x));
  return x - std::log1p(std::exp(x));
}

/// d/dx ln sigma(x) = 1 - sigma(x) = sigma(-x).
inline double LogSigmoidGrad(double x) { return Sigmoid(-x); }

/// Clamps `x` into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace clapf

#endif  // CLAPF_UTIL_MATH_H_
