#ifndef CLAPF_UTIL_LINALG_H_
#define CLAPF_UTIL_LINALG_H_

#include <vector>

#include "clapf/util/status.h"

namespace clapf {

/// Solves the symmetric positive-definite system A x = b in place via
/// Cholesky decomposition. `a` is n×n row-major and is destroyed; `b` has
/// length n and receives the solution. Returns FailedPrecondition when A is
/// not positive definite (within a small pivot tolerance).
Status CholeskySolveInPlace(std::vector<double>& a, std::vector<double>& b,
                            int n);

/// Inverts the symmetric positive-definite n×n matrix `a` (row-major) in
/// place via Cholesky factorization: A → A⁻¹. Returns FailedPrecondition
/// when A is not positive definite. O(n³).
Status CholeskyInvertInPlace(std::vector<double>& a, int n);

/// y += alpha * x (vectors of equal length).
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace clapf

#endif  // CLAPF_UTIL_LINALG_H_
