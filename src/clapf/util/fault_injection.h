#ifndef CLAPF_UTIL_FAULT_INJECTION_H_
#define CLAPF_UTIL_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace clapf {

/// Library locations that can be told to fail on demand. Each point is a
/// counter: production code reports a "hit" every time it passes the point,
/// and an armed schedule decides whether that hit fires the fault.
enum class FaultPoint : int {
  /// Model/checkpoint serialization silently writes only a prefix of the
  /// payload (a torn write: the crash happened between write and fsync).
  kModelWriteShort = 0,
  /// One bit of the serialized model/checkpoint payload is flipped before it
  /// reaches disk (silent media corruption).
  kModelWriteBitFlip,
  /// The atomic-rename publish step of a model/checkpoint write fails, as if
  /// the process died after writing the temp file but before renaming it.
  kModelRename,
  /// The interactions loader treats the current line as malformed.
  kLoaderBadLine,
  /// The SGD hot loop's margin becomes NaN for one iteration (a poisoned
  /// gradient), exercising the DivergenceGuard reaction paths.
  kSgdStepNan,
  /// One ranker scoring block in the serving path stalls (sleeps), so a
  /// per-query deadline deterministically expires mid-scan.
  kServeSlowBlock,
  /// A candidate model handed to ModelServer::Publish is poisoned (one factor
  /// becomes NaN) before the canary gate runs — the gate must reject it.
  kServeCorruptCandidate,
  /// One served top-k score is rewritten to NaN after ranking, so the
  /// post-publish serve-time integrity check fails and feeds the breaker.
  kServeScoreNan,
  /// A serving worker stalls before running its task, backing the admission
  /// queue up to its bound so overload shedding kicks in.
  kServeQueueStall,
  /// A WAL append writes only a prefix of the record frame and the process
  /// "dies" (the writer is poisoned): the classic torn tail that replay must
  /// truncate after a reopen.
  kWalAppendTorn,
  /// The WAL's durability fsync fails (EIO-style), leaving the appended
  /// records' persistence uncertain.
  kWalFsyncFail,
  /// WAL segment rotation fails to open the next segment file; appends keep
  /// landing in the old segment until a later rotation succeeds.
  kWalRotateFail,
  /// WAL replay treats the current record's CRC as mismatched, dropping the
  /// rest of that segment (silent media corruption at read time).
  kWalReplayCorrupt,
  /// The freshly built IVF index of a publish is desynced from the candidate
  /// model (its local→global assignment scrambled) before the canary gate
  /// runs — the measured-recall gate must refuse the publish.
  kAnnCorruptIndex,
  /// The freshly built quantized code book of a publish is scrambled before
  /// the canary gate runs (geometry and floats intact, code bytes garbage) —
  /// only the measured *composed* recall gate can refuse this one.
  kAnnCorruptCodes,
  kNumFaultPoints,  // sentinel, keep last
};

/// Human-readable name of a fault point, for logs and test failure messages.
const char* FaultPointName(FaultPoint point);

/// When and how often an armed fault point fires.
struct FaultSpec {
  /// 1-based hit count at which the fault first fires.
  int64_t trigger_at_hit = 1;
  /// How many consecutive hits fire once triggered; -1 = every hit forever.
  int64_t max_fires = 1;
};

/// Process-wide fault-injection registry, RocksDB FaultInjectionTestFS style:
/// compiled into every build, and a handful of branch-predictable no-op
/// checks unless a test arms it. Thread-safe: the serving drills hit armed
/// points from concurrent pool workers, so hit/fire accounting is mutex
/// guarded (only ever taken while a point is armed) and the hot-path
/// `armed()` check is a relaxed atomic load.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `point` with `spec`, resetting its hit/fire counters.
  void Arm(FaultPoint point, FaultSpec spec = {});

  /// Disarms `point`; its counters survive for post-mortem inspection.
  void Disarm(FaultPoint point);

  /// Disarms every point and zeroes all counters.
  void Reset();

  /// True when at least one point is armed. Hot loops hoist this check so an
  /// unarmed build pays nothing per iteration.
  bool armed() const {
    return num_armed_.load(std::memory_order_relaxed) > 0;
  }

  /// Records a hit of `point` and returns true when the armed schedule says
  /// this hit fires. Always false for an unarmed point.
  bool ShouldFire(FaultPoint point);

  /// Counters for assertions: how often the point was passed / fired.
  int64_t hits(FaultPoint point) const;
  int64_t fires(FaultPoint point) const;

  /// Applies any armed payload faults (short write, bit flip) to a serialized
  /// model/checkpoint image just before it is written to disk.
  void MutateModelPayload(std::string* payload);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector() = default;

  struct PointState {
    bool armed = false;
    FaultSpec spec;
    int64_t hits = 0;
    int64_t fires = 0;
  };

  PointState& state(FaultPoint point) {
    return points_[static_cast<size_t>(point)];
  }
  const PointState& state(FaultPoint point) const {
    return points_[static_cast<size_t>(point)];
  }

  mutable std::mutex mutex_;
  std::array<PointState, static_cast<size_t>(FaultPoint::kNumFaultPoints)>
      points_{};
  std::atomic<int> num_armed_{0};
};

}  // namespace clapf

#endif  // CLAPF_UTIL_FAULT_INJECTION_H_
