#ifndef CLAPF_UTIL_STRING_UTIL_H_
#define CLAPF_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "clapf/util/status.h"

namespace clapf {

/// Splits `s` on `delim`; empty fields are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view s);

/// Strict parses; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lowercases ASCII.
std::string ToLower(std::string_view s);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// "h:mm:ss" style duration for seconds.
std::string FormatDuration(double seconds);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace clapf

#endif  // CLAPF_UTIL_STRING_UTIL_H_
