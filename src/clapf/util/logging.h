#ifndef CLAPF_UTIL_LOGGING_H_
#define CLAPF_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace clapf {

/// Log severity, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimum severity that is emitted; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log message; emits to stderr on destruction. If `fatal` it
/// aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace clapf

#define CLAPF_LOG(level)                                                     \
  ::clapf::internal_logging::LogMessage(::clapf::LogLevel::k##level,        \
                                        __FILE__, __LINE__)                  \
      .stream()

/// Aborts with a message when `cond` is false. For programmer errors only;
/// recoverable failures use Status.
#define CLAPF_CHECK(cond)                                                    \
  if (!(cond))                                                               \
  ::clapf::internal_logging::LogMessage(::clapf::LogLevel::kError, __FILE__, \
                                        __LINE__, /*fatal=*/true)            \
          .stream()                                                          \
      << "Check failed: " #cond " "

#define CLAPF_CHECK_OK(expr)                                          \
  do {                                                                \
    const ::clapf::Status _clapf_check_status = (expr);               \
    CLAPF_CHECK(_clapf_check_status.ok()) << _clapf_check_status.ToString(); \
  } while (0)

#ifdef NDEBUG
#define CLAPF_DCHECK(cond) \
  while (false) CLAPF_CHECK(cond)
#else
#define CLAPF_DCHECK(cond) CLAPF_CHECK(cond)
#endif

#endif  // CLAPF_UTIL_LOGGING_H_
