#include "clapf/util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace clapf {

namespace {

namespace stdfs = std::filesystem;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

// fsyncs one path (file or directory). Directory fsync makes a completed
// rename durable; some filesystems refuse O_RDONLY fsync on dirs, in which
// case the rename is still atomic, just not yet durable — acceptable.
Status SyncPath(const std::string& path, bool is_dir) {
  int flags = is_dir ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    if (is_dir) return Status::OK();
    return Status::IoError(ErrnoMessage("cannot open for fsync:", path));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && !is_dir) {
    return Status::IoError(ErrnoMessage("fsync failed:", path));
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return buf.str();
}

Status WriteStringToFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.close();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& contents,
                       FaultPoint rename_fault) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot open for write:", tmp));

  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written,
                        contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError(ErrnoMessage("write failed:", tmp));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError(ErrnoMessage("fsync failed:", tmp));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(ErrnoMessage("close failed:", tmp));
  }

  if (rename_fault != FaultPoint::kNumFaultPoints &&
      FaultInjector::Instance().armed() &&
      FaultInjector::Instance().ShouldFire(rename_fault)) {
    // Simulated crash between data write and publish: the temp file stays,
    // the destination is never updated.
    return Status::IoError("injected rename failure publishing " + path);
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(ErrnoMessage("rename failed:", path));
  }

  const stdfs::path parent = stdfs::path(path).parent_path();
  const std::string dir = parent.empty() ? std::string(".") : parent.string();
  return SyncPath(dir, /*is_dir=*/true);
}

bool PathExists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) return Status::IoError("cannot create directory " + path + ": " +
                                 ec.message());
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  stdfs::remove(path, ec);
  if (ec) return Status::IoError("cannot remove " + path + ": " + ec.message());
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  std::error_code ec;
  stdfs::directory_iterator it(path, ec);
  if (ec) return Status::IoError("cannot list " + path + ": " + ec.message());
  std::vector<std::string> names;
  for (const auto& entry : it) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace clapf
