#ifndef CLAPF_UTIL_CSV_H_
#define CLAPF_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "clapf/util/status.h"

namespace clapf {

/// Streaming writer for delimiter-separated files. Fields containing the
/// delimiter, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(char delim = ',') : delim_(delim) {}

  /// Opens `path` for writing, truncating any existing file.
  Status Open(const std::string& path);

  /// Writes one row; fields are escaped as needed.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes the file.
  Status Close();

  bool is_open() const { return out_.is_open(); }

 private:
  std::string Escape(const std::string& field) const;

  char delim_;
  std::ofstream out_;
};

/// Reads a whole delimiter-separated file into rows of fields. Handles
/// RFC 4180 quoting (embedded delimiters/quotes/newlines in quoted fields).
/// Blank lines are skipped.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, char delim = ',');

/// Parses a single CSV line (no embedded newlines) into fields.
std::vector<std::string> ParseCsvLine(const std::string& line, char delim);

}  // namespace clapf

#endif  // CLAPF_UTIL_CSV_H_
