#ifndef CLAPF_UTIL_TABLE_PRINTER_H_
#define CLAPF_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace clapf {

/// Accumulates rows and prints a column-aligned ASCII table, used by the
/// benchmark harness to render the paper's tables.
class TablePrinter {
 public:
  /// Sets the header row; must be called before adding rows.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row; shorter rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator after the current last row.
  void AddSeparator();

  /// Renders the table ("| a | b |" style with +---+ rules).
  void Print(std::ostream& os) const;

  /// Renders to a string.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> separators_;  // row indices after which to draw a rule
};

}  // namespace clapf

#endif  // CLAPF_UTIL_TABLE_PRINTER_H_
