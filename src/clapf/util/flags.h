#ifndef CLAPF_UTIL_FLAGS_H_
#define CLAPF_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "clapf/util/status.h"

namespace clapf {

/// Minimal CLI flag parser for the benchmark and example binaries. Accepts
/// `--name=value` and `--name value`; `--name` alone sets a bool flag true.
/// Unknown flags are an error so typos surface immediately.
class FlagParser {
 public:
  /// Registers a flag with a default value and help text. `*target` must
  /// outlive Parse().
  void AddInt(const std::string& name, int64_t* target, std::string help);
  void AddDouble(const std::string& name, double* target, std::string help);
  void AddString(const std::string& name, std::string* target,
                 std::string help);
  void AddBool(const std::string& name, bool* target, std::string help);

  /// Parses argv; positional (non-flag) arguments are collected in
  /// `positional()`. On `--help`, prints usage and returns a non-OK status
  /// with code kFailedPrecondition so callers can exit cleanly.
  Status Parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the registered flags with defaults and help strings.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace clapf

#endif  // CLAPF_UTIL_FLAGS_H_
