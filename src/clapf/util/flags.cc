#include "clapf/util/flags.h"

#include <cstdio>
#include <sstream>

#include "clapf/util/string_util.h"

namespace clapf {

void FlagParser::AddInt(const std::string& name, int64_t* target,
                        std::string help) {
  flags_[name] = Flag{Type::kInt, target, std::move(help),
                      std::to_string(*target)};
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           std::string help) {
  flags_[name] = Flag{Type::kDouble, target, std::move(help),
                      FormatDouble(*target, 4)};
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           std::string help) {
  flags_[name] = Flag{Type::kString, target, std::move(help), *target};
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         std::string help) {
  flags_[name] =
      Flag{Type::kBool, target, std::move(help), *target ? "true" : "false"};
}

Status FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag: --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt: {
      auto parsed = ParseInt64(value);
      if (!parsed.ok()) return parsed.status();
      *static_cast<int64_t*>(flag.target) = *parsed;
      break;
    }
    case Type::kDouble: {
      auto parsed = ParseDouble(value);
      if (!parsed.ok()) return parsed.status();
      *static_cast<double*>(flag.target) = *parsed;
      break;
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      break;
    case Type::kBool: {
      std::string v = ToLower(value);
      if (v == "true" || v == "1" || v == "yes" || v.empty()) {
        *static_cast<bool*>(flag.target) = true;
      } else if (v == "false" || v == "0" || v == "no") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("bad bool for --" + name + ": " + value);
      }
      break;
    }
  }
  return Status::OK();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      return Status::FailedPrecondition("help requested");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      CLAPF_RETURN_IF_ERROR(SetValue(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + body);
    }
    if (it->second.type == Type::kBool) {
      *static_cast<bool*>(it->second.target) = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + body + " expects a value");
    }
    CLAPF_RETURN_IF_ERROR(SetValue(body, argv[++i]));
  }
  return Status::OK();
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_repr << ")\n"
       << "      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace clapf
