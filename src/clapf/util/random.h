#ifndef CLAPF_UTIL_RANDOM_H_
#define CLAPF_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace clapf {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component in CLAPF owns an Rng seeded
/// explicitly, so all experiments are reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses unbiased
  /// rejection sampling (Lemire).
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi). Requires lo < hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal variate (Box-Muller, cached pair).
  double NextGaussian();

  /// Geometric variate: number of failures before first success with success
  /// probability `p` in (0, 1]; returns values in {0, 1, 2, ...}.
  uint64_t Geometric(double p);

  /// True with probability `p`.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (Floyd's algorithm); result is
  /// unsorted. Requires k <= n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Derives an independent child generator; stream i differs from stream j
  /// for i != j and from the parent.
  Rng Fork();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// SplitMix64 step, exposed for deterministic hashing of seeds.
uint64_t SplitMix64(uint64_t& state);

}  // namespace clapf

#endif  // CLAPF_UTIL_RANDOM_H_
