#include "clapf/util/crc32.h"

#include <array>

namespace clapf {

namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, const void* data, size_t len) {
  const auto& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    state = table[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32(const void* data, size_t len) {
  return Crc32Finalize(Crc32Update(Crc32Init(), data, len));
}

}  // namespace clapf
