#include "clapf/util/random.h"

#include <cmath>

#include "clapf/util/logging.h"

namespace clapf {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  CLAPF_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  CLAPF_DCHECK(lo < hi);
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

uint64_t Rng::Geometric(double p) {
  CLAPF_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  CLAPF_CHECK(k <= n) << "cannot sample " << k << " distinct from " << n;
  // Floyd's algorithm: O(k) expected draws, no O(n) scratch.
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = Uniform(j + 1);
    bool seen = false;
    for (uint64_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace clapf
