#include "clapf/util/stopwatch.h"

namespace clapf {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::Reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double Stopwatch::ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

double Stopwatch::ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

}  // namespace clapf
