#include "clapf/util/top_k.h"

#include <algorithm>

#include "clapf/util/logging.h"

namespace clapf {

TopKAccumulator::TopKAccumulator(size_t k) : k_(k) {
  CLAPF_CHECK(k >= 1);
  heap_.reserve(k + 1);
}

bool TopKAccumulator::Less(const ScoredItem& a, const ScoredItem& b) const {
  // Min-heap ordering: the heap root is the *worst* kept item. A higher score
  // is better; on score ties a smaller item id is better.
  if (a.score != b.score) return a.score < b.score;
  return a.item > b.item;
}

void TopKAccumulator::Push(int32_t item, double score) {
  ScoredItem cand{item, score};
  auto cmp = [this](const ScoredItem& a, const ScoredItem& b) {
    return !Less(a, b);  // std::push_heap builds a max-heap; invert.
  };
  if (heap_.size() < k_) {
    heap_.push_back(cand);
    std::push_heap(heap_.begin(), heap_.end(), cmp);
    return;
  }
  if (Less(heap_.front(), cand)) {
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    heap_.back() = cand;
    std::push_heap(heap_.begin(), heap_.end(), cmp);
  }
}

std::vector<ScoredItem> TopKAccumulator::Take() {
  std::vector<ScoredItem> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), [this](const auto& a, const auto& b) {
    return Less(b, a);  // best first
  });
  return out;
}

std::vector<ScoredItem> SelectTopK(const std::vector<double>& scores,
                                   const std::vector<bool>& exclude,
                                   size_t k) {
  TopKAccumulator acc(k);
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!exclude.empty() && exclude[i]) continue;
    acc.Push(static_cast<int32_t>(i), scores[i]);
  }
  return acc.Take();
}

}  // namespace clapf
