#ifndef CLAPF_UTIL_TOP_K_H_
#define CLAPF_UTIL_TOP_K_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clapf {

/// (item id, predicted score) pair used throughout ranking code.
struct ScoredItem {
  int32_t item = 0;
  double score = 0.0;
};

/// Streaming top-k accumulator keyed by score (max first). Ties are broken by
/// smaller item id for determinism. O(log k) per Push.
class TopKAccumulator {
 public:
  /// `k` must be >= 1.
  explicit TopKAccumulator(size_t k);

  /// Offers one candidate.
  void Push(int32_t item, double score);

  /// Extracts the accumulated items ordered best-to-worst; the accumulator
  /// is left empty.
  std::vector<ScoredItem> Take();

  size_t size() const { return heap_.size(); }
  size_t k() const { return k_; }

  /// True once k items are held; from then on Push evicts the worst.
  bool full() const { return heap_.size() >= k_; }

  /// Score of the worst kept item — the bar a candidate must meet to enter.
  /// Only meaningful when full(). Fused scan kernels early-reject candidates
  /// strictly below this without paying for Push; a candidate *tying* the
  /// threshold must still be offered so the item-id tie-break applies.
  double threshold_score() const { return heap_.front().score; }

 private:
  bool Less(const ScoredItem& a, const ScoredItem& b) const;

  size_t k_;
  std::vector<ScoredItem> heap_;  // min-heap on score
};

/// Convenience: returns the top-k of `scores` (indexed by item id) excluding
/// any item for which `exclude[item]` is true. `exclude` may be empty to mean
/// "exclude nothing".
std::vector<ScoredItem> SelectTopK(const std::vector<double>& scores,
                                   const std::vector<bool>& exclude, size_t k);

}  // namespace clapf

#endif  // CLAPF_UTIL_TOP_K_H_
