#ifndef CLAPF_UTIL_TOP_K_H_
#define CLAPF_UTIL_TOP_K_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clapf {

/// (item id, predicted score) pair used throughout ranking code.
struct ScoredItem {
  int32_t item = 0;
  double score = 0.0;
};

/// Streaming top-k accumulator keyed by score (max first). Ties are broken by
/// smaller item id for determinism. O(log k) per Push.
class TopKAccumulator {
 public:
  /// `k` must be >= 1.
  explicit TopKAccumulator(size_t k);

  /// Offers one candidate.
  void Push(int32_t item, double score);

  /// Extracts the accumulated items ordered best-to-worst; the accumulator
  /// is left empty.
  std::vector<ScoredItem> Take();

  size_t size() const { return heap_.size(); }
  size_t k() const { return k_; }

 private:
  bool Less(const ScoredItem& a, const ScoredItem& b) const;

  size_t k_;
  std::vector<ScoredItem> heap_;  // min-heap on score
};

/// Convenience: returns the top-k of `scores` (indexed by item id) excluding
/// any item for which `exclude[item]` is true. `exclude` may be empty to mean
/// "exclude nothing".
std::vector<ScoredItem> SelectTopK(const std::vector<double>& scores,
                                   const std::vector<bool>& exclude, size_t k);

}  // namespace clapf

#endif  // CLAPF_UTIL_TOP_K_H_
