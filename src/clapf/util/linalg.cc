#include "clapf/util/linalg.h"

#include <cmath>

#include "clapf/util/logging.h"

namespace clapf {

Status CholeskySolveInPlace(std::vector<double>& a, std::vector<double>& b,
                            int n) {
  CLAPF_CHECK(a.size() == static_cast<size_t>(n) * n);
  CLAPF_CHECK(b.size() == static_cast<size_t>(n));
  // Decompose A = L Lᵀ, storing L in the lower triangle of `a`.
  for (int j = 0; j < n; ++j) {
    double diag = a[static_cast<size_t>(j) * n + j];
    for (int k = 0; k < j; ++k) {
      double l = a[static_cast<size_t>(j) * n + k];
      diag -= l * l;
    }
    if (diag <= 1e-12) {
      return Status::FailedPrecondition("matrix is not positive definite");
    }
    diag = std::sqrt(diag);
    a[static_cast<size_t>(j) * n + j] = diag;
    for (int i = j + 1; i < n; ++i) {
      double v = a[static_cast<size_t>(i) * n + j];
      for (int k = 0; k < j; ++k) {
        v -= a[static_cast<size_t>(i) * n + k] *
             a[static_cast<size_t>(j) * n + k];
      }
      a[static_cast<size_t>(i) * n + j] = v / diag;
    }
  }
  // Forward solve L y = b.
  for (int i = 0; i < n; ++i) {
    double v = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) {
      v -= a[static_cast<size_t>(i) * n + k] * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = v / a[static_cast<size_t>(i) * n + i];
  }
  // Back solve Lᵀ x = y.
  for (int i = n - 1; i >= 0; --i) {
    double v = b[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) {
      v -= a[static_cast<size_t>(k) * n + i] * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = v / a[static_cast<size_t>(i) * n + i];
  }
  return Status::OK();
}

Status CholeskyInvertInPlace(std::vector<double>& a, int n) {
  CLAPF_CHECK(a.size() == static_cast<size_t>(n) * n);
  // Factor A = L Lᵀ (lower triangle of `a` becomes L).
  for (int j = 0; j < n; ++j) {
    double diag = a[static_cast<size_t>(j) * n + j];
    for (int k = 0; k < j; ++k) {
      double l = a[static_cast<size_t>(j) * n + k];
      diag -= l * l;
    }
    if (diag <= 1e-12) {
      return Status::FailedPrecondition("matrix is not positive definite");
    }
    diag = std::sqrt(diag);
    a[static_cast<size_t>(j) * n + j] = diag;
    for (int i = j + 1; i < n; ++i) {
      double v = a[static_cast<size_t>(i) * n + j];
      for (int k = 0; k < j; ++k) {
        v -= a[static_cast<size_t>(i) * n + k] *
             a[static_cast<size_t>(j) * n + k];
      }
      a[static_cast<size_t>(i) * n + j] = v / diag;
    }
  }
  // Invert the lower-triangular L: Linv_jj = 1/L_jj and, for i > j,
  // Linv_ij = −(1/L_ii) Σ_{k=j}^{i−1} L_ik · Linv_kj.
  std::vector<double> linv(static_cast<size_t>(n) * n, 0.0);
  for (int j = 0; j < n; ++j) {
    linv[static_cast<size_t>(j) * n + j] =
        1.0 / a[static_cast<size_t>(j) * n + j];
    for (int i = j + 1; i < n; ++i) {
      double s = 0.0;
      for (int k = j; k < i; ++k) {
        s += a[static_cast<size_t>(i) * n + k] *
             linv[static_cast<size_t>(k) * n + j];
      }
      linv[static_cast<size_t>(i) * n + j] =
          -s / a[static_cast<size_t>(i) * n + i];
    }
  }
  // A⁻¹ = Linvᵀ · Linv (symmetric).
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double s = 0.0;
      for (int k = j; k < n; ++k) {
        s += linv[static_cast<size_t>(k) * n + i] *
             linv[static_cast<size_t>(k) * n + j];
      }
      a[static_cast<size_t>(i) * n + j] = s;
      a[static_cast<size_t>(j) * n + i] = s;
    }
  }
  return Status::OK();
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  CLAPF_CHECK(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double Dot(const std::vector<double>& x, const std::vector<double>& y) {
  CLAPF_CHECK(x.size() == y.size());
  double s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

}  // namespace clapf
