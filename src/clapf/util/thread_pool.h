#ifndef CLAPF_UTIL_THREAD_POOL_H_
#define CLAPF_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace clapf {

/// Fixed-size worker pool for CPU-bound fan-out (parallel evaluation over
/// users). Tasks are void() closures; Wait() blocks until the queue drains
/// and all workers are idle.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Enqueues `task` only when fewer than `max_depth` tasks are pending or
  /// running; returns false without queuing otherwise. This is the
  /// load-shedding primitive behind serving admission control: the queue
  /// stays bounded instead of absorbing an overload into memory.
  bool TrySubmit(std::function<void()> task, int64_t max_depth);

  /// Tasks submitted but not yet finished (pending + running).
  int64_t InFlight() const;

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Convenience: runs fn(begin..end) sharded across the pool and waits.
  /// fn is invoked as fn(index) for every index in [begin, end).
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace clapf

#endif  // CLAPF_UTIL_THREAD_POOL_H_
