#ifndef CLAPF_UTIL_STATUS_H_
#define CLAPF_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace clapf {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight success-or-error value, RocksDB/Abseil style. CLAPF never
/// throws across API boundaries; fallible operations return `Status` (or
/// `Result<T>` when they also produce a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-error, a minimal StatusOr. Check `ok()` before calling `value()`;
/// accessing the value of a failed Result aborts the process.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return some_t;`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: allows `return Status::NotFound(...)`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : data_(std::move(status)) {}

  bool ok() const {
    return std::holds_alternative<T>(data_);
  }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace clapf

/// Propagates a non-OK Status out of the enclosing function.
#define CLAPF_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::clapf::Status _clapf_status = (expr);          \
    if (!_clapf_status.ok()) return _clapf_status;   \
  } while (0)

#endif  // CLAPF_UTIL_STATUS_H_
