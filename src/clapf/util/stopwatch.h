#ifndef CLAPF_UTIL_STOPWATCH_H_
#define CLAPF_UTIL_STOPWATCH_H_

#include <chrono>

namespace clapf {

/// Wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch();

  /// Restarts from zero.
  void Reset();

  /// Seconds elapsed since construction or last Reset().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed.
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace clapf

#endif  // CLAPF_UTIL_STOPWATCH_H_
