#ifndef CLAPF_UTIL_STOPWATCH_H_
#define CLAPF_UTIL_STOPWATCH_H_

#include <chrono>

namespace clapf {

/// Monotonic elapsed-time stopwatch. Starts running on construction.
/// Backed by std::chrono::steady_clock — measured intervals never jump when
/// the system (wall) clock is adjusted, which is what makes readings safe to
/// feed into latency histograms.
class Stopwatch {
 public:
  Stopwatch();

  /// Restarts from zero.
  void Reset();

  /// Seconds elapsed since construction or last Reset().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed.
  double ElapsedMillis() const;

  /// Microseconds elapsed — the unit the observability latency histograms
  /// record in (see clapf/obs/).
  double ElapsedMicros() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace clapf

#endif  // CLAPF_UTIL_STOPWATCH_H_
