#ifndef CLAPF_UTIL_CRC32_H_
#define CLAPF_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace clapf {

/// Incremental CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum
/// RocksDB-style storage formats append to detect torn writes and bit rot.
/// Usage: start from `Crc32Init()`, fold data in with `Crc32Update`, and
/// produce the final value with `Crc32Finalize`.
inline constexpr uint32_t Crc32Init() { return 0xFFFFFFFFu; }

/// Folds `len` bytes at `data` into the running CRC state.
uint32_t Crc32Update(uint32_t state, const void* data, size_t len);

/// Converts the running state into the final checksum value.
inline constexpr uint32_t Crc32Finalize(uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot convenience over a single buffer.
uint32_t Crc32(const void* data, size_t len);

}  // namespace clapf

#endif  // CLAPF_UTIL_CRC32_H_
