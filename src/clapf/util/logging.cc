#include "clapf/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace clapf {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (fatal_ || level_ >= GetLogLevel()) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace clapf
