#include "clapf/util/string_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace clapf {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("cannot parse integer: '" +
                                   std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty double");
  // std::from_chars for double is not universally available; strtod needs a
  // NUL-terminated buffer.
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("cannot parse double: '" + buf + "'");
  }
  return value;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatDuration(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0) return "?";
  int64_t total = static_cast<int64_t>(seconds);
  int64_t h = total / 3600;
  int64_t m = (total % 3600) / 60;
  double s = seconds - static_cast<double>(h * 3600 + m * 60);
  char buf[64];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%ld:%02ld:%04.1f", h, m, s);
  } else if (m > 0) {
    std::snprintf(buf, sizeof(buf), "%ld:%04.1f", m, s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace clapf
