#include "clapf/util/thread_pool.h"

#include <algorithm>

#include "clapf/util/logging.h"

namespace clapf {

ThreadPool::ThreadPool(int num_threads) {
  CLAPF_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CLAPF_CHECK(!shutting_down_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task, int64_t max_depth) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CLAPF_CHECK(!shutting_down_);
    if (in_flight_ >= max_depth) return false;
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
  return true;
}

int64_t ThreadPool::InFlight() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return in_flight_;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  const int64_t span = end - begin;
  const int64_t shards =
      std::min<int64_t>(span, static_cast<int64_t>(workers_.size()) * 4);
  const int64_t chunk = (span + shards - 1) / shards;
  for (int64_t s = 0; s < shards; ++s) {
    const int64_t lo = begin + s * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    Submit([lo, hi, &fn] {
      for (int64_t i = lo; i < hi; ++i) fn(i);
    });
  }
  Wait();
}

}  // namespace clapf
