#include "clapf/util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace clapf {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { separators_.push_back(rows_.size()); }

void TablePrinter::Print(std::ostream& os) const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  if (cols == 0) return;

  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto rule = [&] {
    os << '+';
    for (size_t c = 0; c < cols; ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t sep : separators_) {
      if (sep == r) rule();
    }
    emit(rows_[r]);
  }
  rule();
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace clapf
