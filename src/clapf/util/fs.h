#ifndef CLAPF_UTIL_FS_H_
#define CLAPF_UTIL_FS_H_

#include <string>
#include <vector>

#include "clapf/util/fault_injection.h"
#include "clapf/util/status.h"

namespace clapf {

/// Small filesystem layer for the resilience subsystem. All operations
/// return Status instead of throwing, per the repo-wide error convention.

/// Reads an entire file into a string. IoError when unreadable.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path` non-atomically (plain open/write/close).
Status WriteStringToFile(const std::string& path, const std::string& contents);

/// Crash-safe publish: writes `contents` to `path + ".tmp"`, fsyncs the file,
/// atomically renames it over `path`, and fsyncs the parent directory so the
/// rename itself survives a crash. Readers therefore only ever observe the
/// old complete file or the new complete file, never a torn prefix.
///
/// `rename_fault`, when not kNumFaultPoints, names the fault-injection point
/// consulted before the rename — firing it simulates a crash after the data
/// write but before the publish (the temp file is left behind, the
/// destination untouched).
Status WriteFileAtomic(const std::string& path, const std::string& contents,
                       FaultPoint rename_fault = FaultPoint::kNumFaultPoints);

/// True when `path` exists (file or directory).
bool PathExists(const std::string& path);

/// Recursively creates `path` as a directory; OK if it already exists.
Status CreateDirs(const std::string& path);

/// Removes a file if present; OK when it does not exist.
Status RemoveFileIfExists(const std::string& path);

/// Non-recursive listing of the file names (not full paths) in `path`,
/// sorted lexicographically. IoError when `path` is not a readable directory.
Result<std::vector<std::string>> ListDir(const std::string& path);

}  // namespace clapf

#endif  // CLAPF_UTIL_FS_H_
