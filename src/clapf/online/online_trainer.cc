#include "clapf/online/online_trainer.h"

#include <algorithm>
#include <memory>

#include "clapf/core/sgd_executor.h"
#include "clapf/data/dataset_builder.h"
#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

namespace {

/// One warm-start BPR step under an access policy — the same pairwise
/// sigmoid update as the batch BprWorker, re-stated here because increments
/// build their own small Dataset per call rather than training one fixed
/// corpus.
template <typename Access>
class OnlineWorker final : public SgdWorker {
 public:
  OnlineWorker(FactorModel* model, const SgdOptions& sgd,
               std::unique_ptr<PairSampler> sampler)
      : model_(model),
        sampler_(std::move(sampler)),
        reg_u_(sgd.reg_user),
        reg_v_(sgd.reg_item),
        reg_b_(sgd.reg_bias),
        d_(sgd.num_factors),
        bias_(sgd.use_item_bias) {}

  double PrepareStep() override {
    p_ = sampler_->Sample();
    return ScoreWith<Access>(*model_, p_.u, p_.i) -
           ScoreWith<Access>(*model_, p_.u, p_.j);
  }

  void ApplyStep(double lr, double margin) override {
    const double g = Sigmoid(-margin);
    auto uu = model_->UserFactors(p_.u);
    auto vi = model_->ItemFactors(p_.i);
    auto vj = model_->ItemFactors(p_.j);
    for (int32_t f = 0; f < d_; ++f) {
      const double u_old = Access::Load(uu[f]);
      const double vi_f = Access::Load(vi[f]);
      const double vj_f = Access::Load(vj[f]);
      Access::Store(uu[f], u_old + lr * (g * (vi_f - vj_f) - reg_u_ * u_old));
      Access::Store(vi[f], vi_f + lr * (g * u_old - reg_v_ * vi_f));
      Access::Store(vj[f], vj_f + lr * (-g * u_old - reg_v_ * vj_f));
    }
    if (bias_) {
      double& bi = model_->ItemBias(p_.i);
      double& bj = model_->ItemBias(p_.j);
      const double bi_old = Access::Load(bi);
      const double bj_old = Access::Load(bj);
      Access::Store(bi, bi_old + lr * (g - reg_b_ * bi_old));
      Access::Store(bj, bj_old + lr * (-g - reg_b_ * bj_old));
    }
  }

 private:
  FactorModel* model_;
  std::unique_ptr<PairSampler> sampler_;
  const double reg_u_, reg_v_, reg_b_;
  const int32_t d_;
  const bool bias_;
  PairSample p_;
};

constexpr uint64_t kReservoirSalt = 0x7265737672ULL;  // "resvr"
constexpr uint64_t kGrowthSalt = 0x67726f77ULL;       // "grow"

uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  uint64_t state = seed ^ salt;
  return SplitMix64(state);
}

}  // namespace

OnlineTrainer::OnlineTrainer(const Dataset& bootstrap,
                             const OnlineTrainerOptions& options)
    : options_(options),
      num_users_(bootstrap.num_users()),
      num_items_(bootstrap.num_items()),
      model_(std::max(1, bootstrap.num_users()),
             std::max(1, bootstrap.num_items()), options.sgd.num_factors,
             options.sgd.use_item_bias),
      reservoir_rng_(MixSeed(options.sgd.seed, kReservoirSalt)) {
  CLAPF_CHECK(options_.sgd.num_factors > 0);
  CLAPF_CHECK(options_.epochs_per_increment > 0);
  CLAPF_CHECK(options_.reservoir_capacity >= 0);
  num_users_ = std::max(num_users_, 1);
  num_items_ = std::max(num_items_, 1);
  Rng init_rng(options_.sgd.seed);
  model_.InitGaussian(init_rng, options_.sgd.init_stddev);
  if (options_.sgd.metrics != nullptr) {
    MetricsRegistry* m = options_.sgd.metrics;
    increments_total_ = m->GetCounter("online.trainer.increments_total");
    rollbacks_total_ = m->GetCounter("online.trainer.rollbacks_total");
    users_gauge_ = m->GetGauge("online.trainer.users");
    items_gauge_ = m->GetGauge("online.trainer.items");
    users_gauge_->Set(static_cast<double>(num_users_));
    items_gauge_->Set(static_cast<double>(num_items_));
  }
  // Stream the bootstrap interactions through the reservoir (user-major
  // order — deterministic) so the first increments already mix history.
  reservoir_.reserve(static_cast<size_t>(
      std::min<int64_t>(options_.reservoir_capacity,
                        bootstrap.num_interactions())));
  for (UserId u = 0; u < bootstrap.num_users(); ++u) {
    for (ItemId i : bootstrap.ItemsOf(u)) {
      ++ingested_;
      if (static_cast<int64_t>(reservoir_.size()) <
          options_.reservoir_capacity) {
        reservoir_.emplace_back(u, i);
      } else if (options_.reservoir_capacity > 0) {
        const uint64_t j =
            reservoir_rng_.Uniform(static_cast<uint64_t>(ingested_));
        if (j < static_cast<uint64_t>(options_.reservoir_capacity)) {
          reservoir_[static_cast<size_t>(j)] = {u, i};
        }
      }
    }
  }
}

void OnlineTrainer::Ingest(UserId u, ItemId i) {
  CLAPF_CHECK(u >= 0);
  CLAPF_CHECK(i >= 0);
  num_users_ = std::max(num_users_, u + 1);
  num_items_ = std::max(num_items_, i + 1);
  tail_.emplace_back(u, i);
  // Algorithm R over the full ingest stream: every record — bootstrap or
  // online — had probability capacity/ingested of being retained, so the
  // history mix is unbiased no matter how long the day runs.
  ++ingested_;
  if (static_cast<int64_t>(reservoir_.size()) < options_.reservoir_capacity) {
    reservoir_.emplace_back(u, i);
  } else if (options_.reservoir_capacity > 0) {
    const uint64_t j =
        reservoir_rng_.Uniform(static_cast<uint64_t>(ingested_));
    if (j < static_cast<uint64_t>(options_.reservoir_capacity)) {
      reservoir_[static_cast<size_t>(j)] = {u, i};
    }
  }
  if (users_gauge_ != nullptr) {
    users_gauge_->Set(static_cast<double>(num_users_));
    items_gauge_->Set(static_cast<double>(num_items_));
  }
}

void OnlineTrainer::DiscardTail() { tail_.clear(); }

void OnlineTrainer::RestoreModel(FactorModel model) {
  num_users_ = std::max(num_users_, model.num_users());
  num_items_ = std::max(num_items_, model.num_items());
  model_ = std::move(model);
}

Status OnlineTrainer::TrainIncrement(uint64_t increment_seed) {
  if (tail_.empty()) return Status::OK();

  // On-the-fly allocation: ids ingested past the model's dimensions get
  // their rows now, Gaussian-initialized from a per-increment stream so a
  // re-run of this increment (crash replay) expands bit-identically.
  if (model_.num_users() < num_users_ || model_.num_items() < num_items_) {
    Rng growth_rng(MixSeed(increment_seed, kGrowthSalt));
    model_.ExpandTo(num_users_, num_items_, growth_rng,
                    options_.sgd.init_stddev);
  }

  // The increment corpus: fresh tail plus the reservoir's slice of history.
  // DatasetBuilder sorts and dedups, so insertion order is irrelevant.
  DatasetBuilder builder(num_users_, num_items_);
  for (const auto& [u, i] : reservoir_) {
    CLAPF_RETURN_IF_ERROR(builder.Add(u, i));
  }
  for (const auto& [u, i] : tail_) {
    CLAPF_RETURN_IF_ERROR(builder.Add(u, i));
  }
  Dataset increment = builder.Build();
  if (TrainableUsers(increment).empty()) {
    // Degenerate corpus (e.g. a single item): nothing pairwise to learn.
    // The tail is still consumed — these records live on in the reservoir.
    tail_.clear();
    ++increments_;
    if (increments_total_ != nullptr) increments_total_->Inc();
    return Status::OK();
  }

  // Belt and braces around the in-loop DivergenceGuard: a halted increment
  // must leave the model exactly as it was, so the deployer always has a
  // last-good to serve.
  const std::vector<double> user_backup = model_.user_factor_data();
  const std::vector<double> item_backup = model_.item_factor_data();
  const std::vector<double> bias_backup = model_.item_bias_data();

  SgdExecutorConfig config;
  config.num_threads = options_.sgd.num_threads;
  config.iterations =
      options_.epochs_per_increment * increment.num_interactions();
  config.learning_rate = options_.sgd.learning_rate;
  config.final_learning_rate_fraction =
      options_.sgd.final_learning_rate_fraction;
  config.divergence = options_.sgd.divergence;
  config.metrics = options_.sgd.metrics;
  config.epoch_iterations =
      static_cast<int64_t>(increment.num_interactions());

  auto factory = [&](int w, int n) -> std::unique_ptr<SgdWorker> {
    auto sampler = std::make_unique<UniformPairSampler>(
        &increment, WorkerSeed(increment_seed, w));
    if (n == 1) {
      return std::make_unique<OnlineWorker<PlainAccess>>(
          &model_, options_.sgd, std::move(sampler));
    }
    return std::make_unique<OnlineWorker<RelaxedAccess>>(
        &model_, options_.sgd, std::move(sampler));
  };

  Status run = SgdExecutor::Run(config, &model_, factory);
  if (!run.ok()) {
    model_.mutable_user_factor_data() = user_backup;
    model_.mutable_item_factor_data() = item_backup;
    model_.mutable_item_bias_data() = bias_backup;
    if (rollbacks_total_ != nullptr) rollbacks_total_->Inc();
    CLAPF_LOG(Warning) << "online increment halted, model rolled back to "
                          "last-good: "
                       << run.ToString();
    return run;
  }
  tail_.clear();
  ++increments_;
  if (increments_total_ != nullptr) increments_total_->Inc();
  return Status::OK();
}

}  // namespace clapf
