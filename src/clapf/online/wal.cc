#include "clapf/online/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "clapf/util/crc32.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/fs.h"
#include "clapf/util/logging.h"

namespace clapf {

namespace {

constexpr char kSegmentMagic[4] = {'C', 'W', 'A', 'L'};
constexpr uint32_t kSegmentVersion = 1;
// magic(4) + version(4) + base_index(8) + crc(4).
constexpr int64_t kSegmentHeaderBytes = 20;
// crc(4) + len(4).
constexpr int64_t kFrameHeaderBytes = 8;
constexpr uint32_t kRecordPayloadBytes = sizeof(int32_t) * 2;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

void EncodeU32(uint32_t v, char* out) { std::memcpy(out, &v, sizeof(v)); }
void EncodeU64(uint64_t v, char* out) { std::memcpy(out, &v, sizeof(v)); }
uint32_t DecodeU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t DecodeU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::string EncodeSegmentHeader(int64_t base_index) {
  std::string h(kSegmentHeaderBytes, '\0');
  std::memcpy(h.data(), kSegmentMagic, sizeof(kSegmentMagic));
  EncodeU32(kSegmentVersion, h.data() + 4);
  EncodeU64(static_cast<uint64_t>(base_index), h.data() + 8);
  EncodeU32(Crc32(h.data(), 16), h.data() + 16);
  return h;
}

std::string EncodeFrame(const WalRecord& record) {
  char payload[kRecordPayloadBytes];
  std::memcpy(payload, &record.user, sizeof(int32_t));
  std::memcpy(payload + sizeof(int32_t), &record.item, sizeof(int32_t));
  std::string frame(kFrameHeaderBytes + kRecordPayloadBytes, '\0');
  EncodeU32(Crc32(payload, sizeof(payload)), frame.data());
  EncodeU32(kRecordPayloadBytes, frame.data() + 4);
  std::memcpy(frame.data() + kFrameHeaderBytes, payload, sizeof(payload));
  return frame;
}

/// Parses the segment names ("wal-<12 digits>.log") out of a directory
/// listing; ListDir's lexicographic order equals numeric order because the
/// sequence number is zero-padded.
std::vector<int64_t> SegmentSequences(const std::vector<std::string>& names) {
  std::vector<int64_t> seqs;
  for (const std::string& name : names) {
    int64_t seq = 0;
    if (std::sscanf(name.c_str(), "wal-%12ld.log", &seq) == 1 &&
        name == InteractionWal::SegmentFileName(seq)) {
      seqs.push_back(seq);
    }
  }
  return seqs;
}

/// One segment scanned from disk. `valid_bytes` is the offset just past the
/// last intact frame — the truncation point for torn-tail recovery.
struct SegmentScan {
  bool header_ok = false;
  int64_t base_index = 0;
  int64_t records = 0;      // intact records, from the start of the segment
  int64_t valid_bytes = 0;  // header + intact frames
  int64_t file_bytes = 0;
  bool corrupt = false;     // a frame failed its CRC (not merely torn)
  bool torn = false;        // an incomplete frame at the end
};

Result<SegmentScan> ScanSegment(const std::string& path, bool inject_faults) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = *contents;
  SegmentScan scan;
  scan.file_bytes = static_cast<int64_t>(data.size());
  if (scan.file_bytes < kSegmentHeaderBytes) return scan;  // header torn off
  if (std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0 ||
      DecodeU32(data.data() + 4) != kSegmentVersion ||
      DecodeU32(data.data() + 16) != Crc32(data.data(), 16)) {
    return scan;  // header corrupt: the whole segment is unreadable
  }
  scan.header_ok = true;
  scan.base_index = static_cast<int64_t>(DecodeU64(data.data() + 8));
  scan.valid_bytes = kSegmentHeaderBytes;

  FaultInjector& faults = FaultInjector::Instance();
  int64_t off = kSegmentHeaderBytes;
  while (off < scan.file_bytes) {
    if (scan.file_bytes - off < kFrameHeaderBytes) {
      scan.torn = true;
      break;
    }
    const uint32_t crc = DecodeU32(data.data() + off);
    const uint32_t len = DecodeU32(data.data() + off + 4);
    if (len != kRecordPayloadBytes) {
      // A frame length that isn't the (fixed) record size is corruption,
      // not a torn tail: the length word itself was damaged.
      scan.corrupt = true;
      break;
    }
    if (scan.file_bytes - off < kFrameHeaderBytes + len) {
      scan.torn = true;
      break;
    }
    const char* payload = data.data() + off + kFrameHeaderBytes;
    bool crc_ok = Crc32(payload, len) == crc;
    if (inject_faults && faults.armed() &&
        faults.ShouldFire(FaultPoint::kWalReplayCorrupt)) {
      crc_ok = false;
    }
    if (!crc_ok) {
      scan.corrupt = true;
      break;
    }
    off += kFrameHeaderBytes + len;
    ++scan.records;
    scan.valid_bytes = off;
  }
  return scan;
}

}  // namespace

std::string InteractionWal::SegmentFileName(int64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%012lld.log",
                static_cast<long long>(seq));
  return buf;
}

InteractionWal::InteractionWal(const WalOptions& options) : options_(options) {
  if (options_.metrics != nullptr) {
    appends_ = options_.metrics->GetCounter("online.wal.appends_total");
    fsyncs_ = options_.metrics->GetCounter("online.wal.fsyncs_total");
    rotations_ = options_.metrics->GetCounter("online.wal.rotations_total");
  }
}

InteractionWal::~InteractionWal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<InteractionWal>> InteractionWal::Open(
    const WalOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("wal dir must be non-empty");
  }
  if (options.segment_bytes <= kSegmentHeaderBytes) {
    return Status::InvalidArgument("wal segment_bytes too small");
  }
  CLAPF_RETURN_IF_ERROR(CreateDirs(options.dir));
  auto names = ListDir(options.dir);
  if (!names.ok()) return names.status();
  std::vector<int64_t> seqs = SegmentSequences(*names);

  std::unique_ptr<InteractionWal> wal(new InteractionWal(options));
  int64_t open_seq = 0;
  int64_t base_index = 0;
  int64_t segment_bytes = 0;
  if (!seqs.empty()) {
    // The append position comes from the LAST segment alone: its header
    // names the base index and its intact-frame count extends it. A torn
    // frame at its tail (the mid-append crash) is truncated away so the
    // next append starts on a clean frame boundary; earlier segments are
    // recovery territory (Replay), not append territory.
    const int64_t last = seqs.back();
    const std::string path = JoinPath(options.dir, SegmentFileName(last));
    auto scan = ScanSegment(path, /*inject_faults=*/false);
    if (!scan.ok()) return scan.status();
    if (!scan->header_ok) {
      return Status::Corruption("wal segment " + path +
                                " has a corrupt header; refusing to append "
                                "after it");
    }
    if (scan->valid_bytes < scan->file_bytes) {
      CLAPF_LOG(Warning)
          << "wal recovery: truncating " << path << " from "
          << scan->file_bytes << " to " << scan->valid_bytes << " bytes ("
          << (scan->torn ? "torn tail" : "corrupt record") << ")";
      if (::truncate(path.c_str(), scan->valid_bytes) != 0) {
        return Status::IoError(ErrnoMessage("cannot truncate", path));
      }
    }
    open_seq = last;
    base_index = scan->base_index + scan->records;
    segment_bytes = scan->valid_bytes;
  }

  const std::string path =
      JoinPath(options.dir, SegmentFileName(open_seq));
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open wal segment", path));
  }
  wal->fd_ = fd;
  wal->segment_seq_ = open_seq;
  wal->next_index_ = base_index;
  if (segment_bytes == 0) {
    // Fresh segment: write its header now so the base index is durable
    // before any record lands.
    const std::string header = EncodeSegmentHeader(base_index);
    if (::write(fd, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size())) {
      return Status::IoError(ErrnoMessage("cannot write wal header", path));
    }
    segment_bytes = kSegmentHeaderBytes;
  }
  wal->segment_bytes_ = segment_bytes;
  return wal;
}

int64_t InteractionWal::next_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_index_;
}

Status InteractionWal::SyncLocked() {
  FaultInjector& faults = FaultInjector::Instance();
  if (faults.armed() && faults.ShouldFire(FaultPoint::kWalFsyncFail)) {
    return Status::IoError("injected wal fsync failure");
  }
  if (::fsync(fd_) != 0) {
    return Status::IoError(ErrnoMessage("wal fsync failed", options_.dir));
  }
  appends_since_sync_ = 0;
  if (fsyncs_ != nullptr) fsyncs_->Inc();
  return Status::OK();
}

Status InteractionWal::RotateLocked() {
  FaultInjector& faults = FaultInjector::Instance();
  if (faults.armed() && faults.ShouldFire(FaultPoint::kWalRotateFail)) {
    // The old segment stays open and writable: a failed rotation degrades
    // to an oversized segment, never to data loss. The next append retries.
    return Status::IoError("injected wal rotate failure");
  }
  // The finished segment must be durable before the new one exists —
  // otherwise a crash could leave a successor whose base index references
  // records the predecessor never persisted.
  CLAPF_RETURN_IF_ERROR(SyncLocked());
  const int64_t next_seq = segment_seq_ + 1;
  const std::string path =
      JoinPath(options_.dir, SegmentFileName(next_seq));
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open wal segment", path));
  }
  const std::string header = EncodeSegmentHeader(next_index_);
  if (::write(fd, header.data(), header.size()) !=
      static_cast<ssize_t>(header.size())) {
    ::close(fd);
    ::unlink(path.c_str());
    return Status::IoError(ErrnoMessage("cannot write wal header", path));
  }
  ::close(fd_);
  fd_ = fd;
  segment_seq_ = next_seq;
  segment_bytes_ = kSegmentHeaderBytes;
  if (rotations_ != nullptr) rotations_->Inc();
  return Status::OK();
}

Status InteractionWal::Append(const WalRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_ || fd_ < 0) {
    return Status::FailedPrecondition(
        "wal writer is poisoned after a failed append; reopen to recover");
  }
  if (segment_bytes_ >= options_.segment_bytes) {
    CLAPF_RETURN_IF_ERROR(RotateLocked());
  }
  const std::string frame = EncodeFrame(record);

  FaultInjector& faults = FaultInjector::Instance();
  if (faults.armed() && faults.ShouldFire(FaultPoint::kWalAppendTorn)) {
    // The simulated crash mid-append: half a frame reaches the file and the
    // process is gone. Poisoning the writer forces the recovery path (a
    // reopen truncates the torn bytes) instead of letting a test keep
    // appending garbage after its own "crash".
    const size_t half = frame.size() / 2;
    ssize_t ignored = ::write(fd_, frame.data(), half);
    (void)ignored;
    ::fsync(fd_);
    poisoned_ = true;
    return Status::IoError("injected torn wal append");
  }

  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      poisoned_ = true;
      return Status::IoError(ErrnoMessage("wal append failed", options_.dir));
    }
    written += static_cast<size_t>(n);
  }
  segment_bytes_ += static_cast<int64_t>(frame.size());
  ++next_index_;
  if (appends_ != nullptr) appends_->Inc();
  if (options_.fsync_every > 0 &&
      ++appends_since_sync_ >= options_.fsync_every) {
    CLAPF_RETURN_IF_ERROR(SyncLocked());
  }
  return Status::OK();
}

Status InteractionWal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_ || fd_ < 0) {
    return Status::FailedPrecondition("wal writer is poisoned; reopen");
  }
  return SyncLocked();
}

Result<WalReplayStats> InteractionWal::Replay(
    int64_t from_index,
    const std::function<void(int64_t, const WalRecord&)>& fn) const {
  auto names = ListDir(options_.dir);
  if (!names.ok()) return names.status();
  const std::vector<int64_t> seqs = SegmentSequences(*names);

  WalReplayStats stats;
  int64_t reached = 0;  // exclusive upper bound of positions seen so far
  for (size_t i = 0; i < seqs.size(); ++i) {
    const std::string path =
        JoinPath(options_.dir, SegmentFileName(seqs[i]));
    auto scan = ScanSegment(path, /*inject_faults=*/true);
    if (!scan.ok()) return scan.status();
    ++stats.segments_scanned;
    if (!scan->header_ok) {
      // An unreadable header loses the whole segment; positions resume at
      // the next segment's header (the gap is counted below).
      ++stats.corrupt_segments;
      continue;
    }
    if (scan->base_index > reached && reached > 0) {
      stats.dropped_records += scan->base_index - reached;
    }
    if (scan->corrupt) ++stats.corrupt_segments;
    if (scan->torn) {
      stats.torn_tail_bytes += scan->file_bytes - scan->valid_bytes;
    }
    if (scan->records > 0) {
      auto contents = ReadFileToString(path);
      if (!contents.ok()) return contents.status();
      const char* data = contents->data();
      int64_t off = kSegmentHeaderBytes;
      for (int64_t r = 0; r < scan->records; ++r) {
        const int64_t position = scan->base_index + r;
        WalRecord record;
        std::memcpy(&record.user, data + off + kFrameHeaderBytes,
                    sizeof(int32_t));
        std::memcpy(&record.item,
                    data + off + kFrameHeaderBytes + sizeof(int32_t),
                    sizeof(int32_t));
        off += kFrameHeaderBytes + kRecordPayloadBytes;
        if (position >= from_index) {
          fn(position, record);
          ++stats.records_delivered;
        }
      }
    }
    reached = scan->base_index + scan->records;
  }
  return stats;
}

}  // namespace clapf
