#include "clapf/online/continuous_deployer.h"

#include <algorithm>
#include <string>
#include <utility>

#include "clapf/util/logging.h"

namespace clapf {

namespace {

constexpr uint64_t kIncrementSalt = 0x696e6372ULL;  // "incr"

/// Seed of the increment that starts at WAL position `position`: a pure
/// function of (base seed, position), so a crash-replayed increment samples
/// and expands exactly like the run it replaces.
uint64_t IncrementSeed(uint64_t base_seed, int64_t position) {
  uint64_t state = base_seed ^ kIncrementSalt ^ static_cast<uint64_t>(position);
  return SplitMix64(state);
}

CheckpointOptions MakeCheckpointOptions(const DeployerOptions& options) {
  CheckpointOptions ckpt;
  ckpt.dir = options.checkpoint_dir;
  // The deployer checkpoints at its own cadence (every cycle); interval just
  // has to be positive for the manager to consider itself enabled.
  ckpt.interval = 1;
  ckpt.keep_last = options.keep_checkpoints;
  ckpt.resume = true;
  return ckpt;
}

OnlineTrainerOptions MakeTrainerOptions(const DeployerOptions& options) {
  OnlineTrainerOptions trainer = options.trainer;
  if (trainer.sgd.metrics == nullptr) trainer.sgd.metrics = options.metrics;
  return trainer;
}

}  // namespace

ContinuousDeployer::ContinuousDeployer(ModelServer* server,
                                       const Dataset& bootstrap,
                                       const DeployerOptions& options)
    : server_(server),
      options_(options),
      envelope_users_(server->history().num_users()),
      envelope_items_(server->history().num_items()),
      trainer_(bootstrap, MakeTrainerOptions(options)),
      checkpoints_(MakeCheckpointOptions(options)),
      last_good_(1, 1, options.trainer.sgd.num_factors,
                 options.trainer.sgd.use_item_bias),
      recorder_(static_cast<size_t>(
          std::max<int64_t>(8, options.flight_recorder_capacity))) {
  CLAPF_CHECK(server_ != nullptr);
  CLAPF_CHECK(!options_.wal.dir.empty());
  CLAPF_CHECK(options_.min_increment_records > 0);
  CLAPF_CHECK(bootstrap.num_users() <= envelope_users_);
  CLAPF_CHECK(bootstrap.num_items() <= envelope_items_);
  if (options_.metrics != nullptr) {
    MetricsRegistry* m = options_.metrics;
    ingested_ = m->GetCounter("online.ingested_total");
    rejected_ = m->GetCounter("online.ingest_rejected_total");
    cycles_ = m->GetCounter("online.cycles_total");
    publishes_ = m->GetCounter("online.publishes_total");
    publish_rollbacks_ = m->GetCounter("online.publish_rollbacks_total");
    increment_rollbacks_ = m->GetCounter("online.increment_rollbacks_total");
    recoveries_ = m->GetCounter("online.recoveries_total");
    wal_position_gauge_ = m->GetGauge("online.wal_position");
    trained_gauge_ = m->GetGauge("online.trained_position");
  }
}

Status ContinuousDeployer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("deployer already started");
  }

  WalOptions wal_options = options_.wal;
  if (wal_options.metrics == nullptr) wal_options.metrics = options_.metrics;
  auto wal = InteractionWal::Open(wal_options);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal.value());

  // Restore the newest valid checkpoint: the model bits plus the WAL
  // position whose records they have consumed. A checkpoint from a
  // different seed or an incompatible shape is ignored (fresh start), not
  // trusted.
  bool recovered_checkpoint = false;
  if (checkpoints_.enabled()) {
    CLAPF_RETURN_IF_ERROR(checkpoints_.Init());
    auto loaded = checkpoints_.LoadLatest();
    if (loaded.ok()) {
      const TrainerCheckpointState& state = loaded->state;
      const FactorModel& model = loaded->model;
      if (state.seed != options_.trainer.sgd.seed) {
        CLAPF_LOG(Warning) << "online checkpoint ignored: seed mismatch";
      } else if (model.num_factors() != options_.trainer.sgd.num_factors ||
                 model.num_users() > envelope_users_ ||
                 model.num_items() > envelope_items_) {
        CLAPF_LOG(Warning) << "online checkpoint ignored: shape mismatch";
      } else {
        trained_position_ = std::min(state.iteration, wal_->next_index());
        trainer_.RestoreModel(model);
        last_good_ = model;
        have_last_good_ = true;
        recovered_checkpoint = true;
      }
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      CLAPF_LOG(Warning) << "online checkpoint load failed, starting fresh: "
                         << loaded.status().ToString();
    }
  }

  // Replay the whole log through the live Ingest path: the reservoir and
  // dimensions are a pure function of the record sequence, so this rebuilds
  // them bit-identically; only the already-trained prefix is kept out of
  // the fresh tail.
  bool discarded = trained_position_ == 0;
  auto replayed =
      wal_->Replay(0, [&](int64_t index, const WalRecord& record) {
        if (!discarded && index >= trained_position_) {
          trainer_.DiscardTail();
          discarded = true;
        }
        trainer_.Ingest(record.user, record.item);
      });
  if (!replayed.ok()) return replayed.status();
  if (!discarded) trainer_.DiscardTail();
  const WalReplayStats& stats = replayed.value();

  std::string detail = "segments=" + std::to_string(stats.segments_scanned) +
                       " records=" + std::to_string(stats.records_delivered) +
                       " torn_bytes=" + std::to_string(stats.torn_tail_bytes) +
                       " corrupt_segments=" +
                       std::to_string(stats.corrupt_segments) +
                       " dropped=" + std::to_string(stats.dropped_records);
  recorder_.Record(FlightEventKind::kWalRecovery, detail, wal_->next_index(),
                   trained_position_);
  if (recoveries_ != nullptr) recoveries_->Inc();
  if (wal_position_gauge_ != nullptr) {
    wal_position_gauge_->Set(static_cast<double>(wal_->next_index()));
  }
  if (trained_gauge_ != nullptr) {
    trained_gauge_->Set(static_cast<double>(trained_position_));
  }
  started_ = true;

  // A recovered model goes back through the same canary gate as any other
  // snapshot — recovery never skips vetting. Gate refusal is handled inside
  // (incident + rollback), not surfaced: the server keeps serving whatever
  // it already trusted.
  if (recovered_checkpoint) PublishLocked("recovery");
  return Status::OK();
}

Status ContinuousDeployer::Ingest(UserId u, ItemId i) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_) return Status::FailedPrecondition("deployer not started");
  if (u < 0 || u >= envelope_users_ || i < 0 || i >= envelope_items_) {
    if (rejected_ != nullptr) rejected_->Inc();
    return Status::InvalidArgument(
        "arrival (" + std::to_string(u) + ", " + std::to_string(i) +
        ") outside the serving envelope " + std::to_string(envelope_users_) +
        "x" + std::to_string(envelope_items_));
  }
  // Write-ahead: the record is durable (per the fsync policy) before the
  // trainer sees it, so log and trainer state never diverge — a failed
  // append ingests nothing.
  CLAPF_RETURN_IF_ERROR(wal_->Append(WalRecord{u, i}));
  trainer_.Ingest(u, i);
  if (ingested_ != nullptr) ingested_->Inc();
  if (wal_position_gauge_ != nullptr) {
    wal_position_gauge_->Set(static_cast<double>(wal_->next_index()));
  }
  return Status::OK();
}

Result<bool> ContinuousDeployer::RunCycle(bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_) return Status::FailedPrecondition("deployer not started");
  const int64_t end_position = wal_->next_index();
  const int64_t pending = end_position - trained_position_;
  if (pending <= 0 || (!force && pending < options_.min_increment_records)) {
    return false;
  }
  if (cycles_ != nullptr) cycles_->Inc();

  // Make the pending records durable before training on them: a crash after
  // this point replays the same increment from the same bits.
  CLAPF_RETURN_IF_ERROR(wal_->Sync());

  const uint64_t seed =
      IncrementSeed(options_.trainer.sgd.seed, trained_position_);
  Status increment = trainer_.TrainIncrement(seed);
  trained_position_ = end_position;
  if (trained_gauge_ != nullptr) {
    trained_gauge_->Set(static_cast<double>(trained_position_));
  }

  if (!increment.ok()) {
    // DivergenceGuard halted and the trainer restored its pre-increment
    // bits. Consume the tail anyway — a deterministic divergence would
    // otherwise re-fire forever — and checkpoint the restored model at the
    // advanced position so a crash does not re-run the divergent step.
    trainer_.DiscardTail();
    if (increment_rollbacks_ != nullptr) increment_rollbacks_->Inc();
    recorder_.Record(FlightEventKind::kInternalError,
                     "online increment halted: " + increment.ToString(),
                     trained_position_);
    if (checkpoints_.enabled()) {
      TrainerCheckpointState state;
      state.iteration = trained_position_;
      state.seed = options_.trainer.sgd.seed;
      CLAPF_RETURN_IF_ERROR(checkpoints_.Write(trainer_.model(), state));
    }
    return true;
  }

  // Handshake order: checkpoint (model ⇄ WAL position) first, then publish.
  // A crash between the two resumes from this checkpoint and simply
  // republishes the same snapshot through the gate.
  if (checkpoints_.enabled()) {
    TrainerCheckpointState state;
    state.iteration = trained_position_;
    state.seed = options_.trainer.sgd.seed;
    CLAPF_RETURN_IF_ERROR(checkpoints_.Write(trainer_.model(), state));
  }
  PublishLocked("cycle");
  return true;
}

Status ContinuousDeployer::PublishLocked(const std::string& why) {
  Status published = server_->PublishModel(PaddedSnapshot());
  if (published.ok()) {
    published_version_ = server_->version();
    last_good_ = trainer_.model();
    have_last_good_ = true;
    if (publishes_ != nullptr) publishes_->Inc();
    recorder_.Record(FlightEventKind::kOnlinePublish, why, published_version_,
                     trained_position_);
    return published;
  }

  // The canary gate refused the snapshot (integrity or sampled-AUC floor):
  // the regression must not poison the next increment either, so the
  // trainer rolls back to the last published-good bits and the checkpoint
  // is rewritten to match — crash or no crash, the refused model is gone.
  if (publish_rollbacks_ != nullptr) publish_rollbacks_->Inc();
  recorder_.Record(FlightEventKind::kAucRegressionRollback,
                   why + ": " + published.ToString(), published_version_,
                   trained_position_);
  CLAPF_LOG(Warning) << "online publish refused (" << why
                     << "), trainer rolled back: " << published.ToString();
  if (have_last_good_) {
    trainer_.RestoreModel(last_good_);
    if (checkpoints_.enabled()) {
      TrainerCheckpointState state;
      state.iteration = trained_position_;
      state.seed = options_.trainer.sgd.seed;
      Status rewrite = checkpoints_.Write(trainer_.model(), state);
      if (!rewrite.ok()) {
        CLAPF_LOG(Warning) << "online rollback checkpoint failed: "
                           << rewrite.ToString();
      }
    }
  }
  if (!options_.flight_dump_path.empty()) {
    Status dumped = DumpFlightRecorderLocked(options_.flight_dump_path);
    if (!dumped.ok()) {
      CLAPF_LOG(Warning) << "online flight dump failed: " << dumped.ToString();
    }
  }
  return published;
}

FactorModel ContinuousDeployer::PaddedSnapshot() const {
  FactorModel padded = trainer_.model();
  if (padded.num_users() < envelope_users_ ||
      padded.num_items() < envelope_items_) {
    // stddev = 0 pads with zero rows and consumes no rng draws: a
    // never-trained id scores 0 everywhere, deterministically.
    Rng unused(0);
    padded.ExpandTo(envelope_users_, envelope_items_, unused, 0.0);
  }
  return padded;
}

Status ContinuousDeployer::DumpFlightRecorderLocked(
    const std::string& path) const {
  return recorder_.DumpJsonFile(path);
}

int64_t ContinuousDeployer::wal_position() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ != nullptr ? wal_->next_index() : 0;
}

int64_t ContinuousDeployer::trained_position() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trained_position_;
}

int64_t ContinuousDeployer::published_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_version_;
}

Status ContinuousDeployer::DumpFlightRecorder(
    const std::string& path, const FlightDumpOptions& options) const {
  return recorder_.DumpJsonFile(path, options);
}

}  // namespace clapf
