#ifndef CLAPF_ONLINE_CONTINUOUS_DEPLOYER_H_
#define CLAPF_ONLINE_CONTINUOUS_DEPLOYER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "clapf/core/checkpoint.h"
#include "clapf/data/dataset.h"
#include "clapf/online/online_trainer.h"
#include "clapf/online/wal.h"
#include "clapf/serving/flight_recorder.h"
#include "clapf/serving/model_server.h"
#include "clapf/util/status.h"

namespace clapf {

/// ContinuousDeployer construction knobs.
struct DeployerOptions {
  /// The durable interaction log. `wal.dir` must be set.
  WalOptions wal;
  /// Directory for the WAL-position⇄model checkpoints; empty disables
  /// checkpointing (crash recovery then retrains the whole WAL).
  std::string checkpoint_dir;
  int32_t keep_checkpoints = 3;
  /// Incremental-training knobs (seed, epochs, reservoir, divergence guard).
  OnlineTrainerOptions trainer;
  /// Records accumulated before RunCycle trains and publishes; smaller is
  /// fresher, larger amortizes the canary gate.
  int64_t min_increment_records = 1;
  /// Events retained by the deployer's own flight recorder.
  int64_t flight_recorder_capacity = 256;
  /// When non-empty, the flight recorder is dumped here on every publish
  /// rollback — the online incident black box.
  std::string flight_dump_path;
  /// Telemetry sink for the online.* counters; also forwarded to the WAL
  /// and (as sgd.metrics) the trainer when they have none of their own.
  MetricsRegistry* metrics = nullptr;
};

/// The crash-safe online lifecycle loop: ingest → train → publish.
///
///   Ingest(u, i)  appends to the WAL (durable per the fsync policy) and
///                 feeds the OnlineTrainer — an arrival is never trained
///                 before it is logged (write-ahead, by construction).
///   RunCycle()    once enough records are pending: one guarded training
///                 increment, a WAL-position⇄model checkpoint, and a push
///                 through the serving canary gate (integrity + sampled-AUC
///                 floor). A gate refusal rolls the trainer back to the
///                 last published-good model and records an
///                 auc-regression-rollback incident — a bad incremental
///                 step can never reach traffic, and cannot poison the next
///                 increment either.
///   Start()       recovery: replays the WAL (torn tails truncated, corrupt
///                 segments skipped), restores the newest valid checkpoint,
///                 re-ingests the un-trained suffix, and republishes the
///                 recovered model through the same gate.
///
/// Crash consistency. The checkpoint stores the model bits together with
/// the WAL position whose records they have consumed
/// (TrainerCheckpointState::iteration). Everything else the trainer needs —
/// dimensions, reservoir, fresh tail — is a deterministic function of the
/// record sequence, so recovery re-derives it by replaying the WAL from
/// position 0 through the same Ingest path (training skipped for the
/// already-consumed prefix). A crash anywhere in ingest→train→publish
/// therefore resumes bit-consistently with an uninterrupted run over the
/// same WAL: same model, same reservoir, same future increments.
///
/// The serving universe (the ModelServer's history dimensions) is fixed at
/// server construction — size it with headroom. The trainer grows inside
/// that envelope on the fly; published snapshots are zero-padded up to the
/// envelope (a never-seen id scores 0 and is handled by the cold-start
/// fallback). Arrivals outside the envelope are refused at Ingest.
///
/// Thread-safe: Ingest/RunCycle/positions are serialized on an internal
/// mutex; serving traffic runs concurrently against the ModelServer.
class ContinuousDeployer {
 public:
  /// `server` is borrowed and must outlive the deployer; its history fixes
  /// the serving envelope. `bootstrap` is the offline batch history the
  /// trainer warm-starts from (dimensions <= the envelope).
  ContinuousDeployer(ModelServer* server, const Dataset& bootstrap,
                     const DeployerOptions& options);

  /// Opens the WAL (running torn-tail recovery), loads the newest valid
  /// checkpoint, replays the log to rebuild ingest state, records a
  /// wal-recovery incident, and — when a checkpoint was recovered —
  /// republishes the recovered model through the canary gate. Must be
  /// called once before Ingest/RunCycle.
  Status Start();

  /// Durably logs and ingests one arrival. InvalidArgument for ids outside
  /// the serving envelope; IoError when the WAL append fails (the record
  /// was NOT ingested — log and ingest state never diverge).
  Status Ingest(UserId u, ItemId i);

  /// One deployment cycle. Returns true when an increment ran (enough
  /// pending records — or any at all with `force`, the end-of-day flush),
  /// false when there was nothing to do. A divergent increment or refused
  /// publish is handled internally (rollback + incident) and still returns
  /// true; only infrastructure failures (WAL, checkpoint I/O) surface as
  /// errors.
  Result<bool> RunCycle(bool force = false);

  /// Exclusive upper bound of durably logged records.
  int64_t wal_position() const;
  /// Records consumed by training (the checkpoint handshake position).
  int64_t trained_position() const;
  /// Serving version of the last snapshot that cleared the gate, 0 if none.
  int64_t published_version() const;

  const OnlineTrainer& trainer() const { return trainer_; }

  /// The online loop's incident stream: wal-recovery, online-publish, and
  /// auc-regression-rollback events (same dump machinery as the server's).
  const FlightRecorder& flight_recorder() const { return recorder_; }
  Status DumpFlightRecorder(const std::string& path,
                            const FlightDumpOptions& options = {}) const;

 private:
  /// Copy of the trainer model zero-padded to the serving envelope.
  FactorModel PaddedSnapshot() const;

  Status PublishLocked(const std::string& why);

  Status DumpFlightRecorderLocked(const std::string& path) const;

  ModelServer* server_;
  DeployerOptions options_;
  int32_t envelope_users_;  // serving history dims (the fixed universe)
  int32_t envelope_items_;

  mutable std::mutex mu_;
  std::unique_ptr<InteractionWal> wal_;  // null until Start
  OnlineTrainer trainer_;
  CheckpointManager checkpoints_;
  FactorModel last_good_;       // last published-good trainer model
  bool have_last_good_ = false;
  int64_t trained_position_ = 0;
  int64_t published_version_ = 0;
  bool started_ = false;

  FlightRecorder recorder_;

  // Telemetry (null when options_.metrics is null).
  Counter* ingested_ = nullptr;          // online.ingested_total
  Counter* rejected_ = nullptr;          // online.ingest_rejected_total
  Counter* cycles_ = nullptr;            // online.cycles_total
  Counter* publishes_ = nullptr;         // online.publishes_total
  Counter* publish_rollbacks_ = nullptr; // online.publish_rollbacks_total
  Counter* increment_rollbacks_ = nullptr;  // online.increment_rollbacks_total
  Counter* recoveries_ = nullptr;        // online.recoveries_total
  Gauge* wal_position_gauge_ = nullptr;  // online.wal_position
  Gauge* trained_gauge_ = nullptr;       // online.trained_position
};

}  // namespace clapf

#endif  // CLAPF_ONLINE_CONTINUOUS_DEPLOYER_H_
