#ifndef CLAPF_ONLINE_WAL_H_
#define CLAPF_ONLINE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/obs/metrics.h"
#include "clapf/util/status.h"

namespace clapf {

/// One logged interaction: the unit of the online ingest stream.
struct WalRecord {
  UserId user = 0;
  ItemId item = 0;
};

/// InteractionWal construction knobs.
struct WalOptions {
  /// Directory holding the segment files (`wal-<seq>.log`). Created on Open.
  std::string dir;
  /// Rotation threshold: a segment at or past this many bytes is closed and
  /// a new one opened before the next append.
  int64_t segment_bytes = 1 << 20;
  /// Durability cadence: 0 never fsyncs (the OS flushes when it pleases),
  /// 1 (default) fsyncs after every append, N fsyncs after every N appends.
  /// Rotation always fsyncs the finished segment regardless.
  int64_t fsync_every = 1;
  /// Optional telemetry sink for the online.wal.* counters. Not owned; must
  /// outlive the WAL.
  MetricsRegistry* metrics = nullptr;
};

/// What a Replay pass observed, for recovery telemetry and test assertions.
struct WalReplayStats {
  int64_t segments_scanned = 0;   ///< segment files visited
  int64_t records_delivered = 0;  ///< records handed to the callback
  int64_t torn_tail_bytes = 0;    ///< incomplete frame bytes dropped at a tail
  int64_t corrupt_segments = 0;   ///< segments cut short by a CRC/frame error
  int64_t dropped_records = 0;    ///< records lost to corruption (index gaps)
};

/// Append-only segmented write-ahead log of interactions, RocksDB log style:
/// every record is CRC32-framed, segments rotate at a size threshold, and
/// recovery tolerates exactly the failure modes a crash leaves behind — a
/// torn frame at the tail of the last segment (truncated and forgotten) and
/// a CRC-corrupt record mid-segment (the rest of that segment is dropped,
/// replay continues with the next one).
///
/// On-disk format. Each segment starts with a CRC-protected header
///   "CWAL" | u32 version | u64 base_index | u32 crc(header)
/// followed by frames
///   u32 crc(payload) | u32 len | payload
/// where the payload is one WalRecord (user, item as int32). A record's
/// position is `base_index + ordinal within its segment`: positions are
/// assigned by the headers, not by what happens to be readable, so they stay
/// stable across corruption — which is what lets a checkpoint reference a
/// WAL position and mean the same record forever.
///
/// Fault injection (always compiled, armed only by tests): kWalAppendTorn
/// writes half a frame and poisons the writer (the simulated crash),
/// kWalFsyncFail fails the durability fsync, kWalRotateFail fails opening
/// the next segment, and kWalReplayCorrupt corrupts a record at read time.
///
/// Thread-safe: appends are serialized by an internal mutex; Replay opens
/// its own read handles and may run concurrently with appends (it sees a
/// prefix of the log).
class InteractionWal {
 public:
  /// Scans `options.dir` (created if missing), validates the existing
  /// segments, truncates any torn frame at the tail of the last segment so
  /// appends land on a clean boundary, and positions the writer after the
  /// last durable record.
  static Result<std::unique_ptr<InteractionWal>> Open(
      const WalOptions& options);

  ~InteractionWal();

  InteractionWal(const InteractionWal&) = delete;
  InteractionWal& operator=(const InteractionWal&) = delete;

  /// Durably appends one record per the fsync policy. IoError on a torn or
  /// failed write — the writer is then poisoned (FailedPrecondition on
  /// further appends) and must be reopened, exactly like the crashed
  /// process it simulates.
  Status Append(const WalRecord& record);

  /// Forces an fsync of the current segment regardless of policy.
  Status Sync();

  /// Position the next Append will get: total records ever assigned, i.e.
  /// the exclusive upper bound of replayable positions.
  int64_t next_index() const;

  /// Delivers every readable record with position >= `from_index` in
  /// position order to `fn(position, record)`. Torn tails and corrupt
  /// segments are recovered per the class contract and reported in the
  /// returned stats; they are never errors.
  Result<WalReplayStats> Replay(
      int64_t from_index,
      const std::function<void(int64_t, const WalRecord&)>& fn) const;

  /// Segment file name for sequence number `seq` ("wal-000000000000.log"),
  /// exposed so drills can corrupt specific segments.
  static std::string SegmentFileName(int64_t seq);

  const WalOptions& options() const { return options_; }

 private:
  explicit InteractionWal(const WalOptions& options);

  /// Closes the current segment (with a final fsync) and opens the next.
  Status RotateLocked();
  Status SyncLocked();

  WalOptions options_;
  mutable std::mutex mu_;
  int fd_ = -1;               // current segment, -1 before Open/after poison
  int64_t segment_seq_ = 0;   // sequence number of the open segment
  int64_t segment_bytes_ = 0; // bytes written to the open segment
  int64_t next_index_ = 0;    // position of the next append
  int64_t appends_since_sync_ = 0;
  bool poisoned_ = false;     // a torn write happened; reopen required

  // Telemetry (null when options_.metrics is null).
  Counter* appends_ = nullptr;    // online.wal.appends_total
  Counter* fsyncs_ = nullptr;     // online.wal.fsyncs_total
  Counter* rotations_ = nullptr;  // online.wal.rotations_total
};

}  // namespace clapf

#endif  // CLAPF_ONLINE_WAL_H_
