#ifndef CLAPF_ONLINE_ONLINE_TRAINER_H_
#define CLAPF_ONLINE_ONLINE_TRAINER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "clapf/core/trainer.h"
#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/obs/metrics.h"
#include "clapf/util/random.h"
#include "clapf/util/status.h"

namespace clapf {

/// OnlineTrainer construction knobs.
struct OnlineTrainerOptions {
  /// Warm-start SGD hyper-parameters. `seed` drives everything deterministic
  /// here: the initial Gaussian model, the reservoir stream, and (mixed with
  /// the per-increment seed) the growth initialization and pair sampling.
  /// `num_threads` = 1 keeps increments bit-reproducible; > 1 runs HogWild.
  SgdOptions sgd;
  /// Passes over each increment's pair set (iterations = epochs x pairs).
  int64_t epochs_per_increment = 2;
  /// Historical interactions retained (uniform reservoir over the whole
  /// ingest stream) and mixed into every increment so fresh-tail SGD cannot
  /// catastrophically forget the catalog.
  int64_t reservoir_capacity = 1024;
};

/// Warm-start incremental SGD over a live interaction stream. Interactions
/// are Ingest()ed one at a time (new user/item ids grow the model on the
/// fly); TrainIncrement() then runs a few BPR-style epochs on SgdExecutor
/// over the fresh tail mixed with reservoir-sampled history, every step
/// watched by DivergenceGuard, with rollback-to-last-good when an increment
/// halts.
///
/// Determinism contract (what the crash-resume handshake is built on): all
/// internal state — model bits, reservoir contents, dimensions — is a pure
/// function of (options, the ingested record sequence, the increment seeds
/// and boundaries). Re-ingesting the same WAL prefix after RestoreModel()
/// reproduces the exact pre-crash state, bit for bit, when run serially.
///
/// Not thread-safe: the deployer serializes ingest and training; serving
/// concurrency lives behind the ModelServer snapshot swap, not here.
class OnlineTrainer {
 public:
  /// Starts from `bootstrap` (the offline batch history): its dimensions
  /// seed the model (Gaussian init from sgd.seed) and its interactions are
  /// streamed through the reservoir so history mixing works from the first
  /// increment.
  OnlineTrainer(const Dataset& bootstrap, const OnlineTrainerOptions& options);

  /// Feeds one interaction: grows the declared dimensions past unseen ids,
  /// appends to the fresh tail, and advances the history reservoir. Called
  /// for live arrivals and WAL replay alike — both must evolve the state
  /// identically.
  void Ingest(UserId u, ItemId i);

  /// Drops the fresh tail without training — used on resume for the WAL
  /// prefix a recovered checkpoint has already consumed.
  void DiscardTail();

  /// Incremental training over tail + reservoir. `increment_seed` must be a
  /// deterministic function of the WAL position so a re-run increment is
  /// bit-identical. On success the tail is consumed. On a DivergenceGuard
  /// halt the model is restored to its pre-increment bits, the tail is
  /// KEPT (the caller decides whether to retry or discard), and the halt
  /// status is returned.
  Status TrainIncrement(uint64_t increment_seed);

  /// Adopts `model` as the current parameters (checkpoint resume); declared
  /// dimensions grow to cover it. The caller then replays the WAL through
  /// Ingest to rebuild the reservoir/tail state.
  void RestoreModel(FactorModel model);

  const FactorModel& model() const { return model_; }
  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int64_t tail_size() const { return static_cast<int64_t>(tail_.size()); }
  int64_t increments() const { return increments_; }
  int64_t ingested() const { return ingested_; }

 private:
  OnlineTrainerOptions options_;
  int32_t num_users_;  // declared dims; model_ catches up at TrainIncrement
  int32_t num_items_;
  FactorModel model_;
  std::vector<std::pair<UserId, ItemId>> tail_;       // since last increment
  std::vector<std::pair<UserId, ItemId>> reservoir_;  // uniform over stream
  Rng reservoir_rng_;   // advanced once per post-fill ingest — replayable
  int64_t ingested_ = 0;    // reservoir stream length (bootstrap + online)
  int64_t increments_ = 0;

  // Telemetry (null when sgd.metrics is null).
  Counter* increments_total_ = nullptr;  // online.trainer.increments_total
  Counter* rollbacks_total_ = nullptr;   // online.trainer.rollbacks_total
  Gauge* users_gauge_ = nullptr;         // online.trainer.users
  Gauge* items_gauge_ = nullptr;         // online.trainer.items
};

}  // namespace clapf

#endif  // CLAPF_ONLINE_ONLINE_TRAINER_H_
