#ifndef CLAPF_RECOMMENDER_H_
#define CLAPF_RECOMMENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/util/status.h"
#include "clapf/util/top_k.h"

namespace clapf {

/// Serving facade: a trained FactorModel plus the interaction history it was
/// trained on, packaged for answering top-k queries. Covers the gaps a raw
/// model leaves for production use: history exclusion, explicit exclusion
/// lists, popularity fallback for cold users, and model persistence.
class Recommender {
 public:
  /// Builds from a trained model and its training data; both are copied so
  /// the recommender owns its state. Model and data dimensions must agree.
  static Result<Recommender> Create(FactorModel model, Dataset history);

  /// Loads the model from `model_path` (SaveModel format) and pairs it with
  /// `history`.
  static Result<Recommender> Load(const std::string& model_path,
                                  Dataset history);

  /// Top-k unseen items for `u`. Cold users (no history) fall back to
  /// popularity ranking. Returns OutOfRange for an unknown user id.
  Result<std::vector<ScoredItem>> Recommend(UserId u, size_t k) const;

  /// Like Recommend but additionally skips every item in `exclude`
  /// (out-of-range ids are ignored).
  Result<std::vector<ScoredItem>> RecommendFiltered(
      UserId u, size_t k, const std::vector<ItemId>& exclude) const;

  /// Predicted relevance score for one (user, item); OutOfRange on bad ids.
  Result<double> Score(UserId u, ItemId i) const;

  /// Persists the underlying model.
  Status Save(const std::string& model_path) const;

  int32_t num_users() const { return model_.num_users(); }
  int32_t num_items() const { return model_.num_items(); }
  const FactorModel& model() const { return model_; }
  const Dataset& history() const { return history_; }

 private:
  Recommender(FactorModel model, Dataset history);

  FactorModel model_;
  Dataset history_;
  std::vector<double> popularity_;  // cold-start fallback scores
};

}  // namespace clapf

#endif  // CLAPF_RECOMMENDER_H_
