#ifndef CLAPF_RECOMMENDER_H_
#define CLAPF_RECOMMENDER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/model/ivf_index.h"
#include "clapf/model/packed_snapshot.h"
#include "clapf/obs/metrics.h"
#include "clapf/util/status.h"
#include "clapf/util/top_k.h"

namespace clapf {

/// Per-query knobs for Recommender::Recommend / RecommendBatch. The default
/// constructed value reproduces the classic behaviour: exclude nothing
/// beyond the user's history, fall back to popularity for cold users, no
/// score floor, no deadline.
struct QueryOptions {
  /// Items to skip in addition to the user's history (out-of-range ids are
  /// ignored).
  std::vector<ItemId> exclude;
  /// When true (default), users without history are served the popularity
  /// ranking. When false, cold users get an empty result instead — callers
  /// that have their own cold-start strategy opt out here.
  bool cold_start_fallback = true;
  /// Drop results scoring below this floor; the result may then hold fewer
  /// than k items.
  std::optional<double> min_score;
  /// Worker threads for RecommendBatch. 0 (default) = hardware concurrency;
  /// single-user Recommend ignores this.
  int num_threads = 0;
  /// Wall-clock budget for the whole call (single query or entire batch).
  /// <= 0 (default) means unbounded. The scoring loop polls the clock every
  /// kRankerBlockItems items, so overrun is bounded by one block's cost;
  /// an expired budget yields Status DeadlineExceeded instead of running
  /// unbounded — batches additionally hand back the completed prefix via
  /// RecommendBatchPartial.
  std::chrono::microseconds deadline{0};
  /// Serve from the packed SIMD snapshot when the recommender carries one:
  /// the fused score+top-k kernel, approximate within PackedScoreBound().
  /// Default true — but a snapshot exists only where one was built
  /// (ModelServer::PublishModel does it at swap time; EnablePacked opts in
  /// manually), so training and offline-eval paths stay on the exact double
  /// scan and their goldens stay bit-identical. Set false to force the exact
  /// path even when a snapshot is present.
  bool use_packed = true;
  /// Serve through the IVF approximate index when the recommender carries
  /// one (EnableIvf / AdoptIvf): probe-list selection + exact fused re-rank
  /// of the shortlisted blocks, sub-linear in the catalog. Off by default —
  /// ANN is approximate *beyond* PackedScoreBound (it can miss items
  /// entirely), so callers opt in per query; without an index the query
  /// silently falls back to the full scan (counted in ann.fallback_total).
  /// Requires use_packed: with the packed path disabled, ANN is off too.
  bool ann = false;
  /// Probe-list width for ANN queries. 0 (default) = the index's
  /// default_nprobe; any value is clamped to [1, num_clusters]. More probes
  /// = higher recall, more items scanned; nprobe = num_clusters degenerates
  /// to the exact full scan.
  int32_t ann_nprobe = 0;
  /// Quantized first-pass scoring inside the ANN shortlist: stream the int8
  /// codes over the probe ranges, keep the top rerank_budget candidates,
  /// then exact-fused-re-rank only the survivors. Requires `ann` and an
  /// index built with IvfOptions::pq (a pq query against an index without
  /// codes silently serves the plain ANN path, counted in
  /// ann.pq_fallback_total). Lossier than plain ANN in principle — which is
  /// why publishes gate the *composed* path's measured recall — but every
  /// returned score is still exact.
  bool pq = false;
  /// Survivor count the quantized first pass hands to the exact re-rank.
  /// 0 (default) = the index's default_rerank_budget; always clamped up to
  /// k so the re-rank can fill every slot. A budget ≥ the shortlist
  /// degenerates to the plain ANN path bit-identically.
  int32_t rerank_budget = 0;
};

/// Reply from Recommender::RecommendBatchPartial: results[i] answers
/// users[i]. When the batch deadline expires mid-flight the work already
/// done is returned rather than discarded; `complete` flags which users
/// finished (an unfinished user's list is empty, never a half-scored
/// ranking).
struct BatchReply {
  std::vector<std::vector<ScoredItem>> results;
  /// complete[i] != 0 iff results[i] holds the finished answer for users[i].
  std::vector<uint8_t> complete;
  /// Number of set flags in `complete`.
  size_t num_complete = 0;
  /// True when the deadline expired before every user finished.
  bool deadline_exceeded = false;
};

/// Serving facade: a trained FactorModel plus the interaction history it was
/// trained on, packaged for answering top-k queries. Covers the gaps a raw
/// model leaves for production use: history exclusion, explicit exclusion
/// lists, popularity fallback for cold users, batched multi-user queries,
/// and model persistence.
class Recommender {
 public:
  /// Builds from a trained model and its training data; both are copied so
  /// the recommender owns its state. Model and data dimensions must agree.
  static Result<Recommender> Create(FactorModel model, Dataset history);

  /// Loads the model from `model_path` (SaveModel format) and pairs it with
  /// `history`.
  static Result<Recommender> Load(const std::string& model_path,
                                  Dataset history);

  /// Top-k unseen items for `u` under `options`. Returns OutOfRange for an
  /// unknown user id and DeadlineExceeded when `options.deadline` expires
  /// mid-scan. A `k` beyond the catalog is clamped to the full ranked
  /// catalog. `Recommend(u, k, {})` is the classic query: history excluded,
  /// cold users served by popularity.
  Result<std::vector<ScoredItem>> Recommend(UserId u, size_t k,
                                            const QueryOptions& options) const;

  /// Top-k for every user in `users`, sharded over a thread pool; result[i]
  /// answers users[i]. All ids are validated up front: one bad id fails the
  /// whole batch with OutOfRange before any scoring work runs. When
  /// `options.deadline` expires mid-batch the call returns DeadlineExceeded;
  /// use RecommendBatchPartial to keep the completed prefix instead.
  Result<std::vector<std::vector<ScoredItem>>> RecommendBatch(
      std::span<const UserId> users, size_t k,
      const QueryOptions& options = {}) const;

  /// Deadline-tolerant batch: identical to RecommendBatch except that an
  /// expired deadline is not an error — the reply carries every completed
  /// user with the rest flagged incomplete. Id validation still fails the
  /// whole call with OutOfRange.
  Result<BatchReply> RecommendBatchPartial(std::span<const UserId> users,
                                           size_t k,
                                           const QueryOptions& options = {})
      const;

  /// Builds and adopts a packed SIMD snapshot of the current model so
  /// queries with QueryOptions::use_packed take the fused fast path. When
  /// `verify_sample_users` > 0 the repack is first checked against the exact
  /// model (VerifyPackedAgreement); a violation is returned and the
  /// recommender stays exact. Convenience for CLI / standalone use —
  /// ModelServer::PublishModel instead builds and gates the snapshot itself and
  /// hands it over via AdoptPacked.
  Status EnablePacked(int32_t verify_sample_users = 0);

  /// Adopts a pre-built snapshot (shared with e.g. the serving canary
  /// probe); pass nullptr to drop back to exact-only queries.
  void AdoptPacked(std::shared_ptr<const PackedSnapshot> packed);

  /// The snapshot packed queries run on, or null when none was built.
  const PackedSnapshot* packed_snapshot() const { return packed_.get(); }

  /// Builds and adopts an IVF index over the current model so queries with
  /// QueryOptions::ann take the sub-linear probe + re-rank path (building
  /// the base packed snapshot first if none exists — ANN implies packed).
  /// When `verify_sample_users` > 0 the index must pass VerifyIvfBinding,
  /// and additionally VerifyIvfRecall at the index's default nprobe when
  /// `verify_recall_floor` > 0; a violation is returned and the recommender
  /// keeps serving without the index. Convenience for CLI / standalone use —
  /// serving publishes instead gate the index themselves and hand it over
  /// via AdoptIvf.
  Status EnableIvf(const IvfOptions& options = {},
                   int32_t verify_sample_users = 0,
                   double verify_recall_floor = 0.0, size_t recall_k = 10);

  /// Adopts a pre-built (already gated) index; nullptr drops back to full
  /// scans.
  void AdoptIvf(std::shared_ptr<const IvfIndex> ivf);

  /// The index ANN queries probe, or null when none was built.
  const IvfIndex* ivf_index() const { return ivf_.get(); }

  /// Predicted relevance score for one (user, item); OutOfRange on bad ids.
  /// Always exact (double path), independent of any packed snapshot.
  Result<double> Score(UserId u, ItemId i) const;

  /// Persists the underlying model.
  Status Save(const std::string& model_path) const;

  /// Routes ranker telemetry into `registry`: ranker.queries_total, the
  /// ranker.query.latency_us histogram, ranker.deadline_exceeded_total, and
  /// the ANN family — ann.queries_total, ann.probes_total,
  /// ann.fallback_total, ann.pq_queries_total, ann.pq_fallback_total, plus
  /// the ann.shortlist_size and ann.rerank_survivors histograms (power-of-two
  /// buckets), so shortlist inflation and the survivor distribution are
  /// visible in the Prometheus/JSON exports. Null (default state) disables
  /// instrumentation. The registry is not owned and must outlive every
  /// query; copies of the recommender share the same handles.
  void SetMetrics(MetricsRegistry* registry);

  int32_t num_users() const { return model_.num_users(); }
  int32_t num_items() const { return model_.num_items(); }
  const FactorModel& model() const { return model_; }
  const Dataset& history() const { return history_; }

 private:
  Recommender(FactorModel model, Dataset history);

  /// Single-user kernel behind every query entry point. `score_buf` and
  /// `excluded` are caller-provided scratch so batch queries reuse their
  /// per-thread buffers across users. `deadline` is an absolute wall-clock
  /// point (nullopt = unbounded) polled between scoring blocks; expiry
  /// yields DeadlineExceeded.
  Result<std::vector<ScoredItem>> RecommendOne(
      UserId u, size_t k, const QueryOptions& options,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      std::vector<double>* score_buf, std::vector<bool>* excluded) const;

  FactorModel model_;
  Dataset history_;
  std::vector<double> popularity_;  // cold-start fallback scores
  // Immutable SIMD repack shared read-only across query threads; null until
  // EnablePacked/AdoptPacked. Copies of the recommender share it.
  std::shared_ptr<const PackedSnapshot> packed_;
  // Immutable IVF index shared read-only across query threads; null until
  // EnableIvf/AdoptIvf. Copies of the recommender share it.
  std::shared_ptr<const IvfIndex> ivf_;
  // Telemetry handles (null = off); see SetMetrics.
  Counter* queries_metric_ = nullptr;
  Counter* deadline_metric_ = nullptr;
  Histogram* latency_metric_ = nullptr;
  Counter* ann_queries_metric_ = nullptr;
  Counter* ann_probes_metric_ = nullptr;
  Counter* ann_fallback_metric_ = nullptr;
  Counter* ann_pq_queries_metric_ = nullptr;
  Counter* ann_pq_fallback_metric_ = nullptr;
  Histogram* ann_shortlist_hist_ = nullptr;
  Histogram* ann_rerank_hist_ = nullptr;
};

}  // namespace clapf

#endif  // CLAPF_RECOMMENDER_H_
