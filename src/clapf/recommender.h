#ifndef CLAPF_RECOMMENDER_H_
#define CLAPF_RECOMMENDER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/util/status.h"
#include "clapf/util/top_k.h"

namespace clapf {

/// Per-query knobs for Recommender::Recommend / RecommendBatch. The default
/// constructed value reproduces the classic behaviour: exclude nothing
/// beyond the user's history, fall back to popularity for cold users, no
/// score floor.
struct QueryOptions {
  /// Items to skip in addition to the user's history (out-of-range ids are
  /// ignored).
  std::vector<ItemId> exclude;
  /// When true (default), users without history are served the popularity
  /// ranking. When false, cold users get an empty result instead — callers
  /// that have their own cold-start strategy opt out here.
  bool cold_start_fallback = true;
  /// Drop results scoring below this floor; the result may then hold fewer
  /// than k items.
  std::optional<double> min_score;
  /// Worker threads for RecommendBatch. 0 (default) = hardware concurrency;
  /// single-user Recommend ignores this.
  int num_threads = 0;
};

/// Serving facade: a trained FactorModel plus the interaction history it was
/// trained on, packaged for answering top-k queries. Covers the gaps a raw
/// model leaves for production use: history exclusion, explicit exclusion
/// lists, popularity fallback for cold users, batched multi-user queries,
/// and model persistence.
class Recommender {
 public:
  /// Builds from a trained model and its training data; both are copied so
  /// the recommender owns its state. Model and data dimensions must agree.
  static Result<Recommender> Create(FactorModel model, Dataset history);

  /// Loads the model from `model_path` (SaveModel format) and pairs it with
  /// `history`.
  static Result<Recommender> Load(const std::string& model_path,
                                  Dataset history);

  /// Top-k unseen items for `u` under `options`. Returns OutOfRange for an
  /// unknown user id. `Recommend(u, k, {})` is the classic query: history
  /// excluded, cold users served by popularity.
  Result<std::vector<ScoredItem>> Recommend(UserId u, size_t k,
                                            const QueryOptions& options) const;

  /// Top-k for every user in `users`, sharded over a thread pool; result[i]
  /// answers users[i]. All ids are validated up front: one bad id fails the
  /// whole batch with OutOfRange before any scoring work runs.
  Result<std::vector<std::vector<ScoredItem>>> RecommendBatch(
      std::span<const UserId> users, size_t k,
      const QueryOptions& options = {}) const;

  [[deprecated("use Recommend(u, k, QueryOptions{})")]]
  Result<std::vector<ScoredItem>> Recommend(UserId u, size_t k) const {
    return Recommend(u, k, QueryOptions{});
  }

  [[deprecated("use Recommend(u, k, QueryOptions{.exclude = ...})")]]
  Result<std::vector<ScoredItem>> RecommendFiltered(
      UserId u, size_t k, const std::vector<ItemId>& exclude) const {
    QueryOptions options;
    options.exclude = exclude;
    return Recommend(u, k, options);
  }

  /// Predicted relevance score for one (user, item); OutOfRange on bad ids.
  Result<double> Score(UserId u, ItemId i) const;

  /// Persists the underlying model.
  Status Save(const std::string& model_path) const;

  int32_t num_users() const { return model_.num_users(); }
  int32_t num_items() const { return model_.num_items(); }
  const FactorModel& model() const { return model_; }
  const Dataset& history() const { return history_; }

 private:
  Recommender(FactorModel model, Dataset history);

  /// Single-user kernel behind both query entry points. `score_buf` and
  /// `excluded` are caller-provided scratch so batch queries reuse their
  /// per-thread buffers across users.
  std::vector<ScoredItem> RecommendOne(UserId u, size_t k,
                                       const QueryOptions& options,
                                       std::vector<double>* score_buf,
                                       std::vector<bool>* excluded) const;

  FactorModel model_;
  Dataset history_;
  std::vector<double> popularity_;  // cold-start fallback scores
};

}  // namespace clapf

#endif  // CLAPF_RECOMMENDER_H_
