#ifndef CLAPF_NN_MLP_H_
#define CLAPF_NN_MLP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "clapf/nn/dense_layer.h"

namespace clapf {

/// Multi-layer perceptron: a stack of DenseLayers. `dims` lists the layer
/// widths including the input width, e.g. {64, 32, 16, 8} builds three
/// layers 64→32→16→8. Hidden layers use `hidden`; the last layer uses
/// `output` (often kIdentity so a loss-specific nonlinearity can sit on
/// top).
class Mlp {
 public:
  Mlp(const std::vector<int32_t>& dims, Activation hidden, Activation output,
      const AdamConfig& config);

  void Init(Rng& rng);

  /// Forward pass; valid until the next Forward.
  std::span<const double> Forward(std::span<const double> input);

  /// Backprop dLoss/dOutput through every layer, stepping all parameters;
  /// returns dLoss/dInput.
  std::vector<double> BackwardAndStep(std::span<const double> grad_output);

  int32_t input_dim() const { return layers_.front().in_dim(); }
  int32_t output_dim() const { return layers_.back().out_dim(); }
  size_t num_layers() const { return layers_.size(); }
  const DenseLayer& layer(size_t idx) const { return layers_[idx]; }

 private:
  std::vector<DenseLayer> layers_;
};

}  // namespace clapf

#endif  // CLAPF_NN_MLP_H_
