#ifndef CLAPF_NN_EMBEDDING_H_
#define CLAPF_NN_EMBEDDING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "clapf/nn/optimizer.h"
#include "clapf/util/random.h"

namespace clapf {

/// Trainable embedding table with per-row Adam updates — the lookup layer
/// under the neural baselines (NeuMF/NeuPR/DeepICF).
class Embedding {
 public:
  Embedding(int32_t rows, int32_t dim, const AdamConfig& config);

  /// Gaussian init with the given stddev.
  void Init(Rng& rng, double stddev = 0.01);

  int32_t rows() const { return rows_; }
  int32_t dim() const { return dim_; }

  std::span<const double> Row(int32_t r) const {
    return {&table_[static_cast<size_t>(r) * dim_],
            static_cast<size_t>(dim_)};
  }
  std::span<double> MutableRow(int32_t r) {
    return {&table_[static_cast<size_t>(r) * dim_],
            static_cast<size_t>(dim_)};
  }

  /// One Adam step on row `r` with dLoss/dRow = `grad`.
  void ApplyGradient(int32_t r, std::span<const double> grad);

 private:
  int32_t rows_;
  int32_t dim_;
  std::vector<double> table_;
  AdamOptimizer optimizer_;
};

}  // namespace clapf

#endif  // CLAPF_NN_EMBEDDING_H_
