#include "clapf/nn/embedding.h"

#include "clapf/util/logging.h"

namespace clapf {

Embedding::Embedding(int32_t rows, int32_t dim, const AdamConfig& config)
    : rows_(rows),
      dim_(dim),
      table_(static_cast<size_t>(rows) * dim, 0.0),
      optimizer_(static_cast<size_t>(rows) * dim, static_cast<size_t>(dim),
                 config) {
  CLAPF_CHECK(rows >= 0);
  CLAPF_CHECK(dim > 0);
}

void Embedding::Init(Rng& rng, double stddev) {
  for (double& x : table_) x = rng.NextGaussian() * stddev;
}

void Embedding::ApplyGradient(int32_t r, std::span<const double> grad) {
  optimizer_.Update(static_cast<size_t>(r) * dim_, grad, MutableRow(r));
}

}  // namespace clapf
