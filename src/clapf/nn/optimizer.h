#ifndef CLAPF_NN_OPTIMIZER_H_
#define CLAPF_NN_OPTIMIZER_H_

#include <cstdint>
#include <span>
#include <vector>

namespace clapf {

/// Adam hyper-parameters (Kingma & Ba defaults).
struct AdamConfig {
  double learning_rate = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Decoupled L2 weight decay applied at each step (0 disables).
  double weight_decay = 0.0;
};

/// Adam state for one parameter tensor. Supports sparse updates: callers may
/// update any contiguous slice (e.g. one embedding row); bias correction uses
/// a per-slice step count so rarely-touched rows are corrected properly.
class AdamOptimizer {
 public:
  /// `num_params` total parameters; `slice_size` granularity of sparse
  /// updates (use num_params for dense tensors). num_params must be a
  /// multiple of slice_size.
  AdamOptimizer(size_t num_params, size_t slice_size, const AdamConfig& config);

  /// Applies one Adam step to the slice starting at `offset` (a multiple of
  /// slice_size): params -= lr * m̂ / (√v̂ + ε). `grad` and `params` have
  /// slice_size elements.
  void Update(size_t offset, std::span<const double> grad,
              std::span<double> params);

  const AdamConfig& config() const { return config_; }

 private:
  AdamConfig config_;
  size_t slice_size_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::vector<int64_t> step_;  // per-slice step count
};

/// Plain per-sample SGD step with L2: params -= lr * (grad + l2 * params).
void SgdStep(double learning_rate, double l2, std::span<const double> grad,
             std::span<double> params);

}  // namespace clapf

#endif  // CLAPF_NN_OPTIMIZER_H_
