#include "clapf/nn/activation.h"

#include <cmath>

#include "clapf/util/math.h"

namespace clapf {

double ApplyActivation(Activation act, double x) {
  switch (act) {
    case Activation::kIdentity:
      return x;
    case Activation::kRelu:
      return x > 0.0 ? x : 0.0;
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kTanh:
      return std::tanh(x);
  }
  return x;
}

double ActivationDerivative(Activation act, double x, double y) {
  switch (act) {
    case Activation::kIdentity:
      return 1.0;
    case Activation::kRelu:
      return x > 0.0 ? 1.0 : 0.0;
    case Activation::kSigmoid:
      return y * (1.0 - y);
    case Activation::kTanh:
      return 1.0 - y * y;
  }
  return 1.0;
}

const char* ActivationName(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
  }
  return "?";
}

}  // namespace clapf
