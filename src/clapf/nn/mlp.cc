#include "clapf/nn/mlp.h"

#include "clapf/util/logging.h"

namespace clapf {

Mlp::Mlp(const std::vector<int32_t>& dims, Activation hidden,
         Activation output, const AdamConfig& config) {
  CLAPF_CHECK(dims.size() >= 2) << "MLP needs at least input and output dims";
  layers_.reserve(dims.size() - 1);
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    const bool last = l + 2 == dims.size();
    layers_.emplace_back(dims[l], dims[l + 1], last ? output : hidden,
                         config);
  }
}

void Mlp::Init(Rng& rng) {
  for (auto& layer : layers_) layer.Init(rng);
}

std::span<const double> Mlp::Forward(std::span<const double> input) {
  std::span<const double> x = input;
  for (auto& layer : layers_) x = layer.Forward(x);
  return x;
}

std::vector<double> Mlp::BackwardAndStep(std::span<const double> grad_output) {
  std::vector<double> g(grad_output.begin(), grad_output.end());
  for (size_t l = layers_.size(); l > 0; --l) {
    g = layers_[l - 1].BackwardAndStep(g);
  }
  return g;
}

}  // namespace clapf
