#include "clapf/nn/optimizer.h"

#include <cmath>

#include "clapf/util/logging.h"

namespace clapf {

AdamOptimizer::AdamOptimizer(size_t num_params, size_t slice_size,
                             const AdamConfig& config)
    : config_(config),
      slice_size_(slice_size),
      m_(num_params, 0.0),
      v_(num_params, 0.0),
      step_(slice_size > 0 ? num_params / slice_size : 0, 0) {
  CLAPF_CHECK(slice_size > 0);
  CLAPF_CHECK(num_params % slice_size == 0);
}

void AdamOptimizer::Update(size_t offset, std::span<const double> grad,
                           std::span<double> params) {
  CLAPF_DCHECK(grad.size() == slice_size_);
  CLAPF_DCHECK(params.size() == slice_size_);
  CLAPF_DCHECK(offset % slice_size_ == 0);
  CLAPF_DCHECK(offset + slice_size_ <= m_.size());

  const size_t slice = offset / slice_size_;
  const int64_t t = ++step_[slice];
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t));

  for (size_t i = 0; i < slice_size_; ++i) {
    double g = grad[i];
    if (config_.weight_decay > 0.0) g += config_.weight_decay * params[i];
    double& m = m_[offset + i];
    double& v = v_[offset + i];
    m = config_.beta1 * m + (1.0 - config_.beta1) * g;
    v = config_.beta2 * v + (1.0 - config_.beta2) * g * g;
    const double m_hat = m / bc1;
    const double v_hat = v / bc2;
    params[i] -=
        config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
  }
}

void SgdStep(double learning_rate, double l2, std::span<const double> grad,
             std::span<double> params) {
  CLAPF_DCHECK(grad.size() == params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i] -= learning_rate * (grad[i] + l2 * params[i]);
  }
}

}  // namespace clapf
