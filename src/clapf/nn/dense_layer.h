#ifndef CLAPF_NN_DENSE_LAYER_H_
#define CLAPF_NN_DENSE_LAYER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "clapf/nn/activation.h"
#include "clapf/nn/optimizer.h"
#include "clapf/util/random.h"

namespace clapf {

/// Fully-connected layer y = act(W x + b) with per-sample backprop and Adam.
/// Forward stores the activations needed by Backward, so the usage pattern is
/// strictly Forward → BackwardAndStep per sample.
class DenseLayer {
 public:
  DenseLayer(int32_t in_dim, int32_t out_dim, Activation activation,
             const AdamConfig& config);

  /// Glorot-uniform weight init; zero biases.
  void Init(Rng& rng);

  /// Computes and caches the forward pass; the returned span is valid until
  /// the next Forward call.
  std::span<const double> Forward(std::span<const double> input);

  /// Backpropagates dLoss/dOutput, applies one Adam step to W and b, and
  /// returns dLoss/dInput.
  std::vector<double> BackwardAndStep(std::span<const double> grad_output);

  int32_t in_dim() const { return in_dim_; }
  int32_t out_dim() const { return out_dim_; }
  Activation activation() const { return activation_; }

  /// Raw weights (out_dim × in_dim, row-major), for tests.
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<double>& biases() const { return biases_; }

 private:
  int32_t in_dim_;
  int32_t out_dim_;
  Activation activation_;
  std::vector<double> weights_;  // out x in
  std::vector<double> biases_;   // out
  AdamOptimizer weight_opt_;
  AdamOptimizer bias_opt_;
  // Cached forward state.
  std::vector<double> input_;
  std::vector<double> pre_;
  std::vector<double> output_;
  // Scratch gradients.
  std::vector<double> weight_grad_;
  std::vector<double> bias_grad_;
};

}  // namespace clapf

#endif  // CLAPF_NN_DENSE_LAYER_H_
