#include "clapf/nn/dense_layer.h"

#include <cmath>

#include "clapf/util/logging.h"

namespace clapf {

DenseLayer::DenseLayer(int32_t in_dim, int32_t out_dim, Activation activation,
                       const AdamConfig& config)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      activation_(activation),
      weights_(static_cast<size_t>(out_dim) * in_dim, 0.0),
      biases_(static_cast<size_t>(out_dim), 0.0),
      weight_opt_(weights_.size(), weights_.size(), config),
      bias_opt_(biases_.size(), biases_.size(), config),
      weight_grad_(weights_.size(), 0.0),
      bias_grad_(biases_.size(), 0.0) {
  CLAPF_CHECK(in_dim > 0 && out_dim > 0);
}

void DenseLayer::Init(Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(in_dim_ + out_dim_));
  for (double& w : weights_) w = (rng.NextDouble() * 2.0 - 1.0) * limit;
  std::fill(biases_.begin(), biases_.end(), 0.0);
}

std::span<const double> DenseLayer::Forward(std::span<const double> input) {
  CLAPF_DCHECK(input.size() == static_cast<size_t>(in_dim_));
  input_.assign(input.begin(), input.end());
  pre_.resize(static_cast<size_t>(out_dim_));
  output_.resize(static_cast<size_t>(out_dim_));
  for (int32_t o = 0; o < out_dim_; ++o) {
    const double* w = &weights_[static_cast<size_t>(o) * in_dim_];
    double s = biases_[static_cast<size_t>(o)];
    for (int32_t i = 0; i < in_dim_; ++i) s += w[i] * input_[i];
    pre_[static_cast<size_t>(o)] = s;
    output_[static_cast<size_t>(o)] = ApplyActivation(activation_, s);
  }
  return output_;
}

std::vector<double> DenseLayer::BackwardAndStep(
    std::span<const double> grad_output) {
  CLAPF_DCHECK(grad_output.size() == static_cast<size_t>(out_dim_));
  std::vector<double> grad_input(static_cast<size_t>(in_dim_), 0.0);

  for (int32_t o = 0; o < out_dim_; ++o) {
    const double dpre =
        grad_output[static_cast<size_t>(o)] *
        ActivationDerivative(activation_, pre_[static_cast<size_t>(o)],
                             output_[static_cast<size_t>(o)]);
    bias_grad_[static_cast<size_t>(o)] = dpre;
    double* wg = &weight_grad_[static_cast<size_t>(o) * in_dim_];
    const double* w = &weights_[static_cast<size_t>(o) * in_dim_];
    for (int32_t i = 0; i < in_dim_; ++i) {
      wg[i] = dpre * input_[static_cast<size_t>(i)];
      grad_input[static_cast<size_t>(i)] += dpre * w[i];
    }
  }

  weight_opt_.Update(0, weight_grad_, weights_);
  bias_opt_.Update(0, bias_grad_, biases_);
  return grad_input;
}

}  // namespace clapf
