#ifndef CLAPF_NN_ACTIVATION_H_
#define CLAPF_NN_ACTIVATION_H_

namespace clapf {

/// Element-wise nonlinearities supported by the nn substrate.
enum class Activation { kIdentity, kRelu, kSigmoid, kTanh };

/// y = act(x).
double ApplyActivation(Activation act, double x);

/// d act(x) / dx given both the pre-activation `x` and the stored output
/// `y = act(x)` (lets sigmoid/tanh reuse y).
double ActivationDerivative(Activation act, double x, double y);

/// Parses "relu" / "sigmoid" / "tanh" / "identity"; nullptr-safe name.
const char* ActivationName(Activation act);

}  // namespace clapf

#endif  // CLAPF_NN_ACTIVATION_H_
