#include "clapf/eval/sampled_evaluator.h"

#include <algorithm>

#include "clapf/eval/ranking_metrics.h"
#include "clapf/util/logging.h"
#include "clapf/util/random.h"

namespace clapf {

SampledEvaluator::SampledEvaluator(const Dataset* train, const Dataset* test,
                                   int32_t num_negatives, uint64_t seed)
    : train_(train), test_(test), num_negatives_(num_negatives), seed_(seed) {
  CLAPF_CHECK(train != nullptr && test != nullptr);
  CLAPF_CHECK(train->num_users() == test->num_users());
  CLAPF_CHECK(train->num_items() == test->num_items());
  CLAPF_CHECK(num_negatives >= 1);
}

EvalSummary SampledEvaluator::Evaluate(const Ranker& ranker,
                                       const std::vector<int>& ks) const {
  CLAPF_CHECK(!ks.empty());
  CLAPF_CHECK(std::is_sorted(ks.begin(), ks.end()));

  EvalSummary summary;
  summary.at_k.resize(ks.size());
  for (size_t i = 0; i < ks.size(); ++i) summary.at_k[i].k = ks[i];

  Rng rng(seed_);
  const int32_t m = train_->num_items();
  std::vector<double> scores;
  std::vector<ItemId> candidates;
  std::vector<ItemId> ranking;
  std::vector<bool> relevant(static_cast<size_t>(m), false);
  int64_t cases = 0;

  for (UserId u = 0; u < train_->num_users(); ++u) {
    auto test_items = test_->ItemsOf(u);
    if (test_items.empty()) continue;
    if (train_->NumItemsOf(u) + test_->NumItemsOf(u) + num_negatives_ > m) {
      continue;  // not enough unobserved items to sample negatives from
    }
    ranker.ScoreItems(u, &scores);

    for (ItemId pos : test_items) {
      candidates.clear();
      candidates.push_back(pos);
      int guard = 0;
      while (static_cast<int32_t>(candidates.size()) < num_negatives_ + 1 &&
             guard < 1000 * num_negatives_) {
        ++guard;
        ItemId j = static_cast<ItemId>(rng.Uniform(static_cast<uint64_t>(m)));
        if (train_->IsObserved(u, j) || test_->IsObserved(u, j)) continue;
        if (std::find(candidates.begin(), candidates.end(), j) !=
            candidates.end()) {
          continue;
        }
        candidates.push_back(j);
      }

      ranking = candidates;
      std::sort(ranking.begin(), ranking.end(), [&](ItemId a, ItemId b) {
        double sa = scores[static_cast<size_t>(a)];
        double sb = scores[static_cast<size_t>(b)];
        if (sa != sb) return sa > sb;
        return a < b;
      });

      relevant[static_cast<size_t>(pos)] = true;
      RankedList list{&ranking, &relevant, 1};
      for (size_t ki = 0; ki < ks.size(); ++ki) {
        MetricsAtK& mk = summary.at_k[ki];
        size_t k = static_cast<size_t>(ks[ki]);
        mk.precision += PrecisionAtK(list, k);
        mk.recall += RecallAtK(list, k);  // == HitRate@k for single positive
        mk.f1 += F1AtK(list, k);
        mk.one_call += OneCallAtK(list, k);
        mk.ndcg += NdcgAtK(list, k);
      }
      summary.map += AveragePrecision(list);
      summary.mrr += ReciprocalRank(list);
      summary.auc += Auc(list);
      relevant[static_cast<size_t>(pos)] = false;
      ++cases;
    }
    ++summary.users_evaluated;
  }

  if (cases > 0) {
    const double inv = 1.0 / static_cast<double>(cases);
    for (auto& mk : summary.at_k) {
      mk.precision *= inv;
      mk.recall *= inv;
      mk.f1 *= inv;
      mk.one_call *= inv;
      mk.ndcg *= inv;
    }
    summary.map *= inv;
    summary.mrr *= inv;
    summary.auc *= inv;
  }
  return summary;
}

}  // namespace clapf
