#ifndef CLAPF_EVAL_SIGNIFICANCE_H_
#define CLAPF_EVAL_SIGNIFICANCE_H_

#include <string>
#include <vector>

#include "clapf/util/status.h"

namespace clapf {

/// Result of a paired comparison between two methods over repeated
/// experiment copies (the paper reports mean±std over five copies; this
/// makes "A beats B" quantitative).
struct PairedComparison {
  double mean_difference = 0.0;  // mean(a - b)
  double std_difference = 0.0;   // sample std of the differences
  double t_statistic = 0.0;      // paired t statistic
  int64_t degrees_of_freedom = 0;
  /// Two-sided p-value (normal approximation for df >= 30, otherwise a
  /// conservative t-table lookup at the 0.05/0.01 levels).
  double p_value = 1.0;
  bool significant_at_05 = false;

  std::string ToString() const;
};

/// Paired t-test on per-copy metric values `a` and `b` (same splits, same
/// order). Requires >= 2 paired samples and equal lengths.
Result<PairedComparison> PairedTTest(const std::vector<double>& a,
                                     const std::vector<double>& b);

/// Standard normal upper-tail survival function Q(x) = P(Z > x), exposed for
/// tests; accurate to ~1e-7.
double NormalSurvival(double x);

}  // namespace clapf

#endif  // CLAPF_EVAL_SIGNIFICANCE_H_
