#include "clapf/eval/evaluator.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "clapf/eval/ranking_metrics.h"
#include "clapf/util/logging.h"
#include "clapf/util/stopwatch.h"
#include "clapf/util/string_util.h"
#include "clapf/util/thread_pool.h"

namespace clapf {

const MetricsAtK& EvalSummary::AtK(int k) const {
  for (const auto& mk : at_k) {
    if (mk.k == k) return mk;
  }
  CLAPF_CHECK(false) << "no metrics at k=" << k;
  return at_k.front();  // unreachable
}

std::string EvalSummary::ToString() const {
  std::ostringstream os;
  for (const auto& mk : at_k) {
    os << "Prec@" << mk.k << "=" << FormatDouble(mk.precision, 3) << " "
       << "Recall@" << mk.k << "=" << FormatDouble(mk.recall, 3) << " ";
  }
  os << "MAP=" << FormatDouble(map, 3) << " MRR=" << FormatDouble(mrr, 3)
     << " AUC=" << FormatDouble(auc, 3)
     << " users=" << users_evaluated;
  return os.str();
}

Evaluator::Evaluator(const Dataset* train, const Dataset* test)
    : train_(train), test_(test) {
  CLAPF_CHECK(train != nullptr && test != nullptr);
  CLAPF_CHECK(train->num_users() == test->num_users());
  CLAPF_CHECK(train->num_items() == test->num_items());
}

void Evaluator::AccumulateRange(const Ranker& ranker,
                                const std::vector<int>& ks, UserId u_begin,
                                UserId u_end, EvalSummary* sums) const {
  EvalSummary& summary = *sums;
  const int32_t num_items = train_->num_items();
  std::vector<double> scores;
  std::vector<ItemId> ranking;
  std::vector<bool> relevant(static_cast<size_t>(num_items), false);

  for (UserId u = u_begin; u < u_end; ++u) {
    auto test_items = test_->ItemsOf(u);
    if (test_items.empty()) continue;

    ranker.ScoreItems(u, &scores);
    CLAPF_CHECK(scores.size() == static_cast<size_t>(num_items));

    // Candidates: every item not observed during training. Test items that
    // happen to also be in training (shouldn't occur with disjoint splits)
    // are excluded from candidates, matching common practice.
    auto train_items = train_->ItemsOf(u);
    size_t cursor = 0;
    ranking.clear();
    ranking.reserve(static_cast<size_t>(num_items) - train_items.size());
    for (ItemId i = 0; i < num_items; ++i) {
      if (cursor < train_items.size() && train_items[cursor] == i) {
        ++cursor;
        continue;
      }
      ranking.push_back(i);
    }

    // Sort best-first; ties broken by item id for determinism.
    std::sort(ranking.begin(), ranking.end(), [&](ItemId a, ItemId b) {
      double sa = scores[static_cast<size_t>(a)];
      double sb = scores[static_cast<size_t>(b)];
      if (sa != sb) return sa > sb;
      return a < b;
    });

    size_t num_relevant = 0;
    for (ItemId i : test_items) {
      if (!train_->IsObserved(u, i)) {
        relevant[static_cast<size_t>(i)] = true;
        ++num_relevant;
      }
    }
    if (num_relevant > 0) {
      RankedList list{&ranking, &relevant, num_relevant};
      for (size_t ki = 0; ki < ks.size(); ++ki) {
        MetricsAtK& mk = summary.at_k[ki];
        size_t k = static_cast<size_t>(ks[ki]);
        mk.precision += PrecisionAtK(list, k);
        mk.recall += RecallAtK(list, k);
        mk.f1 += F1AtK(list, k);
        mk.one_call += OneCallAtK(list, k);
        mk.ndcg += NdcgAtK(list, k);
      }
      summary.map += AveragePrecision(list);
      summary.mrr += ReciprocalRank(list);
      summary.auc += Auc(list);
      ++summary.users_evaluated;
    }
    for (ItemId i : test_items) relevant[static_cast<size_t>(i)] = false;
  }
}

namespace {

// Converts accumulated metric sums to per-user averages.
void Finalize(EvalSummary* summary) {
  if (summary->users_evaluated <= 0) return;
  const double inv = 1.0 / summary->users_evaluated;
  for (auto& mk : summary->at_k) {
    mk.precision *= inv;
    mk.recall *= inv;
    mk.f1 *= inv;
    mk.one_call *= inv;
    mk.ndcg *= inv;
  }
  summary->map *= inv;
  summary->mrr *= inv;
  summary->auc *= inv;
}

}  // namespace

void Evaluator::SetMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    runs_metric_ = nullptr;
    users_metric_ = nullptr;
    latency_metric_ = nullptr;
    return;
  }
  runs_metric_ = registry->GetCounter("eval.runs_total");
  users_metric_ = registry->GetGauge("eval.users_evaluated");
  latency_metric_ =
      registry->GetHistogram("eval.run.latency_us", LatencyBucketsUs());
}

void Evaluator::RecordRun(const EvalSummary& summary,
                          double elapsed_us) const {
  if (runs_metric_ == nullptr) return;
  runs_metric_->Inc();
  users_metric_->Set(static_cast<double>(summary.users_evaluated));
  latency_metric_->Record(elapsed_us);
}

EvalSummary Evaluator::Evaluate(const Ranker& ranker,
                                const std::vector<int>& ks) const {
  CLAPF_CHECK(!ks.empty());
  CLAPF_CHECK(std::is_sorted(ks.begin(), ks.end()));

  Stopwatch watch;
  EvalSummary summary;
  summary.at_k.resize(ks.size());
  for (size_t i = 0; i < ks.size(); ++i) summary.at_k[i].k = ks[i];
  AccumulateRange(ranker, ks, 0, train_->num_users(), &summary);
  Finalize(&summary);
  RecordRun(summary, watch.ElapsedMicros());
  return summary;
}

EvalSummary Evaluator::EvaluateParallel(const Ranker& ranker,
                                        const std::vector<int>& ks,
                                        int num_threads) const {
  CLAPF_CHECK(!ks.empty());
  CLAPF_CHECK(std::is_sorted(ks.begin(), ks.end()));
  CLAPF_CHECK(num_threads >= 1);
  Stopwatch watch;

  // Users are cut into fixed-size blocks (NOT num_threads-sized shards), one
  // partial summary per block, reduced below in block order. The partition
  // and the reduction order are therefore functions of the dataset alone, so
  // the result is identical — to the last bit — for every num_threads. (It
  // may still differ from serial Evaluate() in the last ulp, since that one
  // accumulates everything into a single partial.)
  const int32_t num_users = train_->num_users();
  constexpr int32_t kBlockUsers = 256;
  const int32_t num_blocks =
      num_users > 0 ? (num_users + kBlockUsers - 1) / kBlockUsers : 0;
  std::vector<EvalSummary> partials(static_cast<size_t>(num_blocks));
  for (auto& partial : partials) {
    partial.at_k.resize(ks.size());
    for (size_t i = 0; i < ks.size(); ++i) partial.at_k[i].k = ks[i];
  }

  {
    ThreadPool pool(num_threads);
    for (int32_t b = 0; b < num_blocks; ++b) {
      const UserId lo = static_cast<UserId>(b) * kBlockUsers;
      const UserId hi = std::min<UserId>(num_users, lo + kBlockUsers);
      EvalSummary* partial = &partials[static_cast<size_t>(b)];
      pool.Submit([this, &ranker, &ks, lo, hi, partial] {
        AccumulateRange(ranker, ks, lo, hi, partial);
      });
    }
    pool.Wait();
  }

  EvalSummary summary;
  summary.at_k.resize(ks.size());
  for (size_t i = 0; i < ks.size(); ++i) summary.at_k[i].k = ks[i];
  for (const auto& partial : partials) {
    for (size_t i = 0; i < ks.size(); ++i) {
      summary.at_k[i].precision += partial.at_k[i].precision;
      summary.at_k[i].recall += partial.at_k[i].recall;
      summary.at_k[i].f1 += partial.at_k[i].f1;
      summary.at_k[i].one_call += partial.at_k[i].one_call;
      summary.at_k[i].ndcg += partial.at_k[i].ndcg;
    }
    summary.map += partial.map;
    summary.mrr += partial.mrr;
    summary.auc += partial.auc;
    summary.users_evaluated += partial.users_evaluated;
  }
  Finalize(&summary);
  RecordRun(summary, watch.ElapsedMicros());
  return summary;
}

EvalSummary Evaluator::Evaluate(const FactorModel& model,
                                const std::vector<int>& ks) const {
  FactorModelRanker ranker(&model);
  return Evaluate(ranker, ks);
}

std::vector<int> PaperCutoffs() { return {3, 5, 10, 15, 20}; }

}  // namespace clapf
