#include "clapf/eval/protocol.h"

#include <cmath>

#include "clapf/util/logging.h"
#include "clapf/util/string_util.h"

namespace clapf {

namespace {

MeanStd Reduce(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

}  // namespace

std::string MeanStd::ToString(int digits) const {
  return FormatDouble(mean, digits) + "±" + FormatDouble(std, digits);
}

const AggregateSummary::AtK& AggregateSummary::AtCut(int k) const {
  for (const auto& mk : at_k) {
    if (mk.k == k) return mk;
  }
  CLAPF_CHECK(false) << "no aggregate metrics at k=" << k;
  return at_k.front();  // unreachable
}

AggregateSummary Aggregate(const std::vector<EvalSummary>& runs,
                           const std::vector<double>& train_seconds) {
  AggregateSummary agg;
  agg.num_runs = static_cast<int>(runs.size());
  if (runs.empty()) return agg;
  CLAPF_CHECK(train_seconds.empty() || train_seconds.size() == runs.size());

  const size_t num_ks = runs.front().at_k.size();
  for (const auto& run : runs) {
    CLAPF_CHECK(run.at_k.size() == num_ks) << "cutoff mismatch across runs";
  }

  agg.at_k.resize(num_ks);
  std::vector<double> scratch(runs.size());
  auto reduce_field = [&](auto getter) {
    for (size_t r = 0; r < runs.size(); ++r) scratch[r] = getter(runs[r]);
    return Reduce(scratch);
  };

  for (size_t ki = 0; ki < num_ks; ++ki) {
    auto& out = agg.at_k[ki];
    out.k = runs.front().at_k[ki].k;
    out.precision =
        reduce_field([&](const EvalSummary& s) { return s.at_k[ki].precision; });
    out.recall =
        reduce_field([&](const EvalSummary& s) { return s.at_k[ki].recall; });
    out.f1 = reduce_field([&](const EvalSummary& s) { return s.at_k[ki].f1; });
    out.one_call =
        reduce_field([&](const EvalSummary& s) { return s.at_k[ki].one_call; });
    out.ndcg =
        reduce_field([&](const EvalSummary& s) { return s.at_k[ki].ndcg; });
  }
  agg.map = reduce_field([](const EvalSummary& s) { return s.map; });
  agg.mrr = reduce_field([](const EvalSummary& s) { return s.mrr; });
  agg.auc = reduce_field([](const EvalSummary& s) { return s.auc; });
  if (!train_seconds.empty()) agg.train_seconds = Reduce(train_seconds);
  return agg;
}

}  // namespace clapf
