#ifndef CLAPF_EVAL_EVALUATOR_H_
#define CLAPF_EVAL_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clapf/core/ranker.h"
#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/obs/metrics.h"

namespace clapf {

/// Top-k metric bundle at one cutoff.
struct MetricsAtK {
  int k = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double one_call = 0.0;
  double ndcg = 0.0;
};

/// Averages over all evaluated users (users with >= 1 test item).
struct EvalSummary {
  std::vector<MetricsAtK> at_k;
  double map = 0.0;
  double mrr = 0.0;
  double auc = 0.0;
  int32_t users_evaluated = 0;

  /// Returns the MetricsAtK for cutoff `k`; aborts if absent.
  const MetricsAtK& AtK(int k) const;

  /// "Prec@5=0.43 Recall@5=0.12 ... MAP=0.29 MRR=0.66".
  std::string ToString() const;
};

/// Ranks all items not observed in training for each user (the paper's
/// protocol: "we rank all the unobserved items based on the predicted
/// scores") and averages ranking metrics over users with test feedback.
class Evaluator {
 public:
  /// Both datasets must outlive the evaluator and share dimensions.
  Evaluator(const Dataset* train, const Dataset* test);

  /// Evaluates `ranker` at every cutoff in `ks` (must be non-empty,
  /// ascending).
  EvalSummary Evaluate(const Ranker& ranker, const std::vector<int>& ks) const;

  /// Convenience for the common single-model case.
  EvalSummary Evaluate(const FactorModel& model,
                       const std::vector<int>& ks) const;

  /// Multi-threaded evaluation, sharded over users. The ranker's ScoreItems
  /// must be safe to call concurrently from several threads (FactorModel
  /// qualifies; the neural trainers use per-instance scratch and do not).
  /// Deterministic: users are split into fixed-size blocks whose partial
  /// sums are reduced in block order, so the summary is identical for every
  /// `num_threads` (it may still differ from Evaluate() in the last ulp,
  /// since the block-wise grouping reorders the floating-point adds).
  EvalSummary EvaluateParallel(const Ranker& ranker,
                               const std::vector<int>& ks,
                               int num_threads) const;

  /// Routes evaluation telemetry into `registry`: eval.runs_total, the
  /// eval.run.latency_us histogram, and the eval.users_evaluated gauge
  /// (users counted by the most recent run). Null disables. Not owned.
  void SetMetrics(MetricsRegistry* registry);

 private:
  // Adds the *sums* (not averages) of every metric over users in
  // [u_begin, u_end) into `sums`; `sums->at_k` must be pre-sized to `ks`.
  void AccumulateRange(const Ranker& ranker, const std::vector<int>& ks,
                       UserId u_begin, UserId u_end, EvalSummary* sums) const;

  // Records one finished run into the telemetry handles (no-op when off).
  void RecordRun(const EvalSummary& summary, double elapsed_us) const;

  const Dataset* train_;
  const Dataset* test_;
  // Telemetry handles (null = off); see SetMetrics.
  Counter* runs_metric_ = nullptr;
  Gauge* users_metric_ = nullptr;
  Histogram* latency_metric_ = nullptr;
};

/// The cutoffs used throughout the paper's figures: {3, 5, 10, 15, 20}.
std::vector<int> PaperCutoffs();

}  // namespace clapf

#endif  // CLAPF_EVAL_EVALUATOR_H_
