#ifndef CLAPF_EVAL_PROTOCOL_H_
#define CLAPF_EVAL_PROTOCOL_H_

#include <string>
#include <vector>

#include "clapf/eval/evaluator.h"

namespace clapf {

/// mean ± std of one metric across repeated experiment copies.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;

  /// "0.432±0.005" with `digits` decimals.
  std::string ToString(int digits = 3) const;
};

/// Aggregated repeated-splits result, paralleling EvalSummary.
struct AggregateSummary {
  struct AtK {
    int k = 0;
    MeanStd precision, recall, f1, one_call, ndcg;
  };
  std::vector<AtK> at_k;
  MeanStd map, mrr, auc;
  MeanStd train_seconds;
  int num_runs = 0;

  const AtK& AtCut(int k) const;
};

/// Computes per-metric mean and (population) standard deviation across the
/// paper's five repeated copies. All summaries must share the same cutoffs.
/// `train_seconds` may be empty or parallel to `runs`.
AggregateSummary Aggregate(const std::vector<EvalSummary>& runs,
                           const std::vector<double>& train_seconds = {});

}  // namespace clapf

#endif  // CLAPF_EVAL_PROTOCOL_H_
