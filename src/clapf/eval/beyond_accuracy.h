#ifndef CLAPF_EVAL_BEYOND_ACCURACY_H_
#define CLAPF_EVAL_BEYOND_ACCURACY_H_

#include <string>

#include "clapf/data/dataset.h"
#include "clapf/eval/evaluator.h"

namespace clapf {

/// Beyond-accuracy properties of a recommender's top-k lists. Accuracy
/// metrics (Table 2) say nothing about *what* gets recommended; these
/// quantify catalog usage and popularity bias — the practical difference
/// between PopRank and a personalized CLAPF model with similar NDCG.
struct BeyondAccuracy {
  int k = 0;
  /// Fraction of the catalog that appears in at least one user's top-k.
  double catalog_coverage = 0.0;
  /// Mean self-information −log2(pop_share) of recommended items; higher =
  /// more long-tail recommendations.
  double novelty_bits = 0.0;
  /// Gini coefficient of how often each item is recommended; 0 = uniform
  /// exposure, →1 = a few blockbusters dominate every list.
  double exposure_gini = 0.0;
  /// Mean pairwise Jaccard similarity between different users' top-k lists;
  /// 1 = everyone gets the same list (PopRank), lower = personalized.
  double inter_user_similarity = 0.0;

  std::string ToString() const;
};

/// Computes the beyond-accuracy profile of `ranker`'s top-k lists over all
/// users with training history, excluding each user's observed items.
/// The pairwise similarity term is estimated from `similarity_samples`
/// random user pairs (deterministic given `seed`).
BeyondAccuracy ComputeBeyondAccuracy(const Dataset& train,
                                     const Ranker& ranker, int k,
                                     int similarity_samples = 200,
                                     uint64_t seed = 1);

}  // namespace clapf

#endif  // CLAPF_EVAL_BEYOND_ACCURACY_H_
