#include "clapf/eval/stratified.h"

#include <algorithm>

#include "clapf/data/dataset_builder.h"
#include "clapf/util/logging.h"

namespace clapf {

std::vector<StratumSummary> EvaluateByActivity(const Dataset& train,
                                               const Dataset& test,
                                               const Ranker& ranker,
                                               const std::vector<int>& ks,
                                               int num_strata) {
  CLAPF_CHECK(num_strata >= 1);
  CLAPF_CHECK(train.num_users() == test.num_users());
  CLAPF_CHECK(train.num_items() == test.num_items());

  // Order evaluable users by training activity.
  std::vector<UserId> users;
  for (UserId u = 0; u < train.num_users(); ++u) {
    if (test.NumItemsOf(u) > 0) users.push_back(u);
  }
  std::sort(users.begin(), users.end(), [&](UserId a, UserId b) {
    int32_t na = train.NumItemsOf(a);
    int32_t nb = train.NumItemsOf(b);
    if (na != nb) return na < nb;
    return a < b;
  });

  std::vector<StratumSummary> out;
  if (users.empty()) return out;
  const size_t per_stratum =
      (users.size() + static_cast<size_t>(num_strata) - 1) /
      static_cast<size_t>(num_strata);

  for (int s = 0; s < num_strata; ++s) {
    const size_t lo = static_cast<size_t>(s) * per_stratum;
    if (lo >= users.size()) break;
    const size_t hi = std::min(users.size(), lo + per_stratum);

    // Restrict the test set to this bucket's users; training data stays
    // intact so exclusion and candidate sets are unchanged.
    DatasetBuilder test_builder(test.num_users(), test.num_items());
    int32_t min_act = train.NumItemsOf(users[lo]);
    int32_t max_act = min_act;
    for (size_t idx = lo; idx < hi; ++idx) {
      const UserId u = users[idx];
      min_act = std::min(min_act, train.NumItemsOf(u));
      max_act = std::max(max_act, train.NumItemsOf(u));
      for (ItemId i : test.ItemsOf(u)) {
        CLAPF_CHECK_OK(test_builder.Add(u, i));
      }
    }
    Dataset bucket_test = test_builder.Build();

    StratumSummary stratum;
    stratum.min_activity = min_act;
    stratum.max_activity = max_act;
    stratum.label = "activity[" + std::to_string(min_act) + "," +
                    std::to_string(max_act) + "]";
    Evaluator evaluator(&train, &bucket_test);
    stratum.summary = evaluator.Evaluate(ranker, ks);
    out.push_back(std::move(stratum));
  }
  return out;
}

}  // namespace clapf
