#include "clapf/eval/beyond_accuracy.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "clapf/data/statistics.h"
#include "clapf/util/logging.h"
#include "clapf/util/random.h"
#include "clapf/util/string_util.h"
#include "clapf/util/top_k.h"

namespace clapf {

std::string BeyondAccuracy::ToString() const {
  std::ostringstream os;
  os << "coverage@" << k << "=" << FormatDouble(catalog_coverage * 100.0, 1)
     << "%  novelty=" << FormatDouble(novelty_bits, 2)
     << " bits  exposure-gini=" << FormatDouble(exposure_gini, 3)
     << "  inter-user-jaccard=" << FormatDouble(inter_user_similarity, 3);
  return os.str();
}

BeyondAccuracy ComputeBeyondAccuracy(const Dataset& train,
                                     const Ranker& ranker, int k,
                                     int similarity_samples, uint64_t seed) {
  CLAPF_CHECK(k >= 1);
  BeyondAccuracy out;
  out.k = k;
  const int32_t m = train.num_items();

  auto popularity = train.ItemPopularity();
  const double total_interactions =
      std::max<double>(1.0, static_cast<double>(train.num_interactions()));

  std::vector<double> scores;
  std::vector<bool> exclude(static_cast<size_t>(m), false);
  std::vector<double> exposure(static_cast<size_t>(m), 0.0);
  std::vector<std::vector<ItemId>> lists;
  std::vector<UserId> users;

  double novelty_sum = 0.0;
  int64_t recommended = 0;

  for (UserId u = 0; u < train.num_users(); ++u) {
    if (train.NumItemsOf(u) == 0) continue;
    ranker.ScoreItems(u, &scores);
    for (ItemId i : train.ItemsOf(u)) exclude[static_cast<size_t>(i)] = true;
    auto top = SelectTopK(scores, exclude, static_cast<size_t>(k));
    for (ItemId i : train.ItemsOf(u)) exclude[static_cast<size_t>(i)] = false;

    std::vector<ItemId> list;
    list.reserve(top.size());
    for (const ScoredItem& item : top) {
      list.push_back(item.item);
      exposure[static_cast<size_t>(item.item)] += 1.0;
      // Popularity share with +1 smoothing so unseen items are finite.
      const double share =
          (static_cast<double>(popularity[static_cast<size_t>(item.item)]) +
           1.0) /
          (total_interactions + static_cast<double>(m));
      novelty_sum += -std::log2(share);
      ++recommended;
    }
    std::sort(list.begin(), list.end());
    lists.push_back(std::move(list));
    users.push_back(u);
  }
  if (recommended == 0) return out;

  int32_t covered = 0;
  for (double e : exposure) covered += e > 0.0 ? 1 : 0;
  out.catalog_coverage = static_cast<double>(covered) / std::max(1, m);
  out.novelty_bits = novelty_sum / static_cast<double>(recommended);
  out.exposure_gini = GiniCoefficient(exposure);

  // Estimated mean pairwise Jaccard over random distinct user pairs.
  if (lists.size() >= 2 && similarity_samples > 0) {
    Rng rng(seed);
    double jaccard_sum = 0.0;
    int pairs = 0;
    for (int s = 0; s < similarity_samples; ++s) {
      size_t a = static_cast<size_t>(rng.Uniform(lists.size()));
      size_t b = static_cast<size_t>(rng.Uniform(lists.size()));
      if (a == b) continue;
      const auto& la = lists[a];
      const auto& lb = lists[b];
      std::vector<ItemId> inter;
      std::set_intersection(la.begin(), la.end(), lb.begin(), lb.end(),
                            std::back_inserter(inter));
      const double uni =
          static_cast<double>(la.size() + lb.size() - inter.size());
      if (uni > 0) {
        jaccard_sum += static_cast<double>(inter.size()) / uni;
        ++pairs;
      }
    }
    if (pairs > 0) out.inter_user_similarity = jaccard_sum / pairs;
  }
  return out;
}

}  // namespace clapf
