#include "clapf/eval/ranking_metrics.h"

#include <algorithm>
#include <cmath>

#include "clapf/util/logging.h"

namespace clapf {

namespace {

inline bool IsRelevant(const RankedList& list, size_t pos) {
  return (*list.relevant)[static_cast<size_t>((*list.ranking)[pos])];
}

}  // namespace

double PrecisionAtK(const RankedList& list, size_t k) {
  if (k == 0) return 0.0;
  size_t depth = std::min(k, list.ranking->size());
  size_t hits = 0;
  for (size_t pos = 0; pos < depth; ++pos) {
    if (IsRelevant(list, pos)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecallAtK(const RankedList& list, size_t k) {
  if (list.num_relevant == 0) return 0.0;
  size_t depth = std::min(k, list.ranking->size());
  size_t hits = 0;
  for (size_t pos = 0; pos < depth; ++pos) {
    if (IsRelevant(list, pos)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(list.num_relevant);
}

double F1AtK(const RankedList& list, size_t k) {
  double p = PrecisionAtK(list, k);
  double r = RecallAtK(list, k);
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double OneCallAtK(const RankedList& list, size_t k) {
  size_t depth = std::min(k, list.ranking->size());
  for (size_t pos = 0; pos < depth; ++pos) {
    if (IsRelevant(list, pos)) return 1.0;
  }
  return 0.0;
}

double NdcgAtK(const RankedList& list, size_t k) {
  if (list.num_relevant == 0) return 0.0;
  size_t depth = std::min(k, list.ranking->size());
  double dcg = 0.0;
  for (size_t pos = 0; pos < depth; ++pos) {
    if (IsRelevant(list, pos)) {
      dcg += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
    }
  }
  double idcg = 0.0;
  size_t ideal = std::min(k, list.num_relevant);
  for (size_t pos = 0; pos < ideal; ++pos) {
    idcg += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double AveragePrecision(const RankedList& list) {
  if (list.num_relevant == 0) return 0.0;
  double sum = 0.0;
  size_t hits = 0;
  for (size_t pos = 0; pos < list.ranking->size(); ++pos) {
    if (IsRelevant(list, pos)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(pos + 1);
    }
  }
  return sum / static_cast<double>(list.num_relevant);
}

double ReciprocalRank(const RankedList& list) {
  for (size_t pos = 0; pos < list.ranking->size(); ++pos) {
    if (IsRelevant(list, pos)) {
      return 1.0 / static_cast<double>(pos + 1);
    }
  }
  return 0.0;
}

double Auc(const RankedList& list) {
  size_t total = list.ranking->size();
  size_t relevant = list.num_relevant;
  if (relevant == 0 || relevant >= total) return 0.0;
  // Sum of 1-based ranks of relevant items gives the Mann-Whitney statistic.
  uint64_t rank_sum = 0;
  size_t seen = 0;
  for (size_t pos = 0; pos < total; ++pos) {
    if (IsRelevant(list, pos)) {
      rank_sum += pos + 1;
      ++seen;
    }
  }
  CLAPF_DCHECK(seen == relevant);
  const double r = static_cast<double>(relevant);
  const double n = static_cast<double>(total);
  // Mann-Whitney: U = rank_sum - r(r+1)/2 counts (relevant, irrelevant)
  // pairs where the irrelevant item ranks above, so the correctly ordered
  // pairs are r*(n-r) - U.
  double u = static_cast<double>(rank_sum) - r * (r + 1.0) / 2.0;
  double correct = r * (n - r) - u;
  return correct / (r * (n - r));
}

double ReciprocalRankFromDefinition(const std::vector<int>& ranks,
                                    const std::vector<bool>& relevant) {
  CLAPF_CHECK(ranks.size() == relevant.size());
  const size_t m = ranks.size();
  double rr = 0.0;
  for (size_t i = 0; i < m; ++i) {
    if (!relevant[i]) continue;
    // Product over k of (1 - Y_uk * I(R_uk < R_ui)): zero unless item i is
    // the best-ranked relevant item.
    double prod = 1.0;
    for (size_t k = 0; k < m; ++k) {
      if (relevant[k] && ranks[k] < ranks[i]) {
        prod = 0.0;
        break;
      }
    }
    rr += prod / static_cast<double>(ranks[i]);
  }
  return rr;
}

double AveragePrecisionFromDefinition(const std::vector<int>& ranks,
                                      const std::vector<bool>& relevant) {
  CLAPF_CHECK(ranks.size() == relevant.size());
  const size_t m = ranks.size();
  size_t num_relevant = 0;
  for (bool r : relevant) num_relevant += r ? 1 : 0;
  if (num_relevant == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < m; ++i) {
    if (!relevant[i]) continue;
    double hits_at_or_above = 0.0;
    for (size_t k = 0; k < m; ++k) {
      if (relevant[k] && ranks[k] <= ranks[i]) hits_at_or_above += 1.0;
    }
    sum += hits_at_or_above / static_cast<double>(ranks[i]);
  }
  return sum / static_cast<double>(num_relevant);
}

}  // namespace clapf
