#ifndef CLAPF_EVAL_ORACLE_H_
#define CLAPF_EVAL_ORACLE_H_

#include <vector>

#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"

namespace clapf {

/// Ranker backed by the synthetic generator's ground truth: the ceiling any
/// learned recommender can reach on that data (used to calibrate the
/// presets, DESIGN.md §4, and handy in tests).
class OracleRanker : public Ranker {
 public:
  /// `truth` must outlive the ranker.
  explicit OracleRanker(const SyntheticGroundTruth* truth) : truth_(truth) {}

  void ScoreItems(UserId u, std::vector<double>* scores) const override {
    const int32_t m = static_cast<int32_t>(truth_->item_factors.size() /
                                           static_cast<size_t>(
                                               truth_->num_factors));
    scores->resize(static_cast<size_t>(m));
    for (ItemId i = 0; i < m; ++i) {
      (*scores)[static_cast<size_t>(i)] = truth_->Affinity(u, i);
    }
  }

  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const override {
    for (ItemId i = begin; i < end; ++i) {
      (*scores)[static_cast<size_t>(i)] = truth_->Affinity(u, i);
    }
  }

 private:
  const SyntheticGroundTruth* truth_;
};

}  // namespace clapf

#endif  // CLAPF_EVAL_ORACLE_H_
