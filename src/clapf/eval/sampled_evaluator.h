#ifndef CLAPF_EVAL_SAMPLED_EVALUATOR_H_
#define CLAPF_EVAL_SAMPLED_EVALUATOR_H_

#include <cstdint>

#include "clapf/eval/evaluator.h"

namespace clapf {

/// The NCF-style sampled evaluation protocol (He et al. 2017): each test
/// positive is ranked against `num_negatives` sampled unobserved items
/// instead of the whole catalog. The paper explicitly does NOT use this
/// ("we rank all the unobserved items … as adopted in common recommender
/// systems", §6.3) because sampled ranking inflates every metric; this
/// implementation exists so the two protocols can be compared directly.
class SampledEvaluator {
 public:
  /// `train`/`test` must outlive the evaluator and share dimensions.
  SampledEvaluator(const Dataset* train, const Dataset* test,
                   int32_t num_negatives, uint64_t seed);

  /// Evaluates hit-rate-style metrics: each (u, test-item) case ranks the
  /// positive against `num_negatives` negatives; metrics are averaged over
  /// cases. Recall@k degenerates to HitRate@k (one relevant per case).
  EvalSummary Evaluate(const Ranker& ranker, const std::vector<int>& ks) const;

  int32_t num_negatives() const { return num_negatives_; }

 private:
  const Dataset* train_;
  const Dataset* test_;
  int32_t num_negatives_;
  uint64_t seed_;
};

}  // namespace clapf

#endif  // CLAPF_EVAL_SAMPLED_EVALUATOR_H_
