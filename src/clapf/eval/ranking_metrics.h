#ifndef CLAPF_EVAL_RANKING_METRICS_H_
#define CLAPF_EVAL_RANKING_METRICS_H_

#include <cstddef>
#include <vector>

#include "clapf/data/dataset.h"

namespace clapf {

/// A user's evaluation input: the candidate items ranked best-first, and a
/// bitmap over item ids marking which are relevant (in the test set).
struct RankedList {
  const std::vector<ItemId>* ranking;      // best first
  const std::vector<bool>* relevant;       // indexed by item id
  size_t num_relevant;                     // == count of true bits seen in ranking
};

/// Precision@k: fraction of the top-k that is relevant.
double PrecisionAtK(const RankedList& list, size_t k);

/// Recall@k: fraction of the relevant items found in the top-k.
double RecallAtK(const RankedList& list, size_t k);

/// F1@k: harmonic mean of Precision@k and Recall@k (0 when both are 0).
double F1AtK(const RankedList& list, size_t k);

/// 1-call@k: 1 if at least one relevant item appears in the top-k, else 0.
double OneCallAtK(const RankedList& list, size_t k);

/// NDCG@k with binary gains: DCG@k / IDCG@k where a relevant item at
/// 1-based rank r contributes 1/log2(r+1).
double NdcgAtK(const RankedList& list, size_t k);

/// Average Precision over the full ranking (Eq. 8 of the paper):
/// AP = (1/|rel|) Σ_{relevant at rank r} Precision@r.
double AveragePrecision(const RankedList& list);

/// Reciprocal Rank: 1 / rank of the first relevant item (Eq. 5).
double ReciprocalRank(const RankedList& list);

/// AUC over the full ranking (Eq. 1): probability that a random relevant
/// item is ranked above a random irrelevant candidate.
double Auc(const RankedList& list);

/// Exact (non-smoothed) Reciprocal Rank computed directly from Eq. (5) of
/// the paper — the product form over Y and rank indicators. Used by tests to
/// validate that ReciprocalRank() agrees with the paper's definition.
/// `ranks[i]` is the 1-based rank R_ui of item i; `relevant[i]` is Y_ui.
double ReciprocalRankFromDefinition(const std::vector<int>& ranks,
                                    const std::vector<bool>& relevant);

/// Exact Average Precision computed directly from Eq. (8).
double AveragePrecisionFromDefinition(const std::vector<int>& ranks,
                                      const std::vector<bool>& relevant);

}  // namespace clapf

#endif  // CLAPF_EVAL_RANKING_METRICS_H_
