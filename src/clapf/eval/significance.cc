#include "clapf/eval/significance.h"

#include <cmath>
#include <sstream>

#include "clapf/util/string_util.h"

namespace clapf {

namespace {

// Critical t values (two-sided, alpha = 0.05) for df = 1..30.
constexpr double kT05[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};

}  // namespace

double NormalSurvival(double x) {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

Result<PairedComparison> PairedTTest(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired samples must have equal length");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("need at least 2 paired samples");
  }
  const size_t n = a.size();
  PairedComparison result;
  result.degrees_of_freedom = static_cast<int64_t>(n) - 1;

  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) mean += a[i] - b[i];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(n - 1);  // sample variance

  result.mean_difference = mean;
  result.std_difference = std::sqrt(var);
  if (var <= 0.0) {
    // All differences identical: degenerate, but a consistent nonzero
    // difference is as significant as it gets.
    result.t_statistic = mean == 0.0 ? 0.0 : (mean > 0 ? 1e9 : -1e9);
    result.p_value = mean == 0.0 ? 1.0 : 0.0;
    result.significant_at_05 = mean != 0.0;
    return result;
  }

  result.t_statistic =
      mean / (result.std_difference / std::sqrt(static_cast<double>(n)));
  const double abs_t = std::fabs(result.t_statistic);
  if (result.degrees_of_freedom >= 30) {
    result.p_value = 2.0 * NormalSurvival(abs_t);
    result.significant_at_05 = result.p_value < 0.05;
  } else {
    const double critical =
        kT05[static_cast<size_t>(result.degrees_of_freedom) - 1];
    result.significant_at_05 = abs_t > critical;
    // Coarse p-value: normal approximation reported for reference only.
    result.p_value = 2.0 * NormalSurvival(abs_t);
  }
  return result;
}

std::string PairedComparison::ToString() const {
  std::ostringstream os;
  os << "Δ=" << FormatDouble(mean_difference, 4) << "±"
     << FormatDouble(std_difference, 4) << " t(" << degrees_of_freedom
     << ")=" << FormatDouble(t_statistic, 2)
     << (significant_at_05 ? " (significant at 0.05)"
                           : " (not significant at 0.05)");
  return os.str();
}

}  // namespace clapf
