#ifndef CLAPF_EVAL_STRATIFIED_H_
#define CLAPF_EVAL_STRATIFIED_H_

#include <string>
#include <vector>

#include "clapf/eval/evaluator.h"

namespace clapf {

/// Per-stratum evaluation breakdown: users bucketed by training activity
/// ("how much history does personalization have to work with") — the
/// diagnostic behind the paper's sparse-vs-dense dataset observations
/// condensed to one dataset.
struct StratumSummary {
  std::string label;
  /// Users whose training activity is in [min_activity, max_activity).
  int32_t min_activity = 0;
  int32_t max_activity = 0;
  EvalSummary summary;
};

/// Splits users into `num_strata` equal-count buckets by training activity
/// (cold → heavy) and evaluates `ranker` on each bucket separately. Users
/// without test items are not counted. `num_strata` >= 1.
std::vector<StratumSummary> EvaluateByActivity(const Dataset& train,
                                               const Dataset& test,
                                               const Ranker& ranker,
                                               const std::vector<int>& ks,
                                               int num_strata);

}  // namespace clapf

#endif  // CLAPF_EVAL_STRATIFIED_H_
