#ifndef CLAPF_OBS_TRACE_SPAN_H_
#define CLAPF_OBS_TRACE_SPAN_H_

#include "clapf/obs/metrics.h"
#include "clapf/util/stopwatch.h"

namespace clapf {

/// RAII scoped timer: measures from construction to destruction (or an
/// explicit Stop()) on the monotonic clock and records the elapsed
/// microseconds into a latency histogram.
///
///   Histogram* lat = registry.GetHistogram("serving.query.latency_us",
///                                          LatencyBucketsUs());
///   {
///     TraceSpan span(lat);
///     ... serve the query ...
///   }  // elapsed us recorded here
///
/// A null histogram makes the span inert (one branch at destruction), so
/// call sites need no "is observability on?" conditional of their own.
class TraceSpan {
 public:
  explicit TraceSpan(Histogram* histogram) : histogram_(histogram) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Stop(); }

  /// Records the elapsed time now instead of at scope exit; the destructor
  /// then does nothing. Idempotent.
  void Stop() {
    if (histogram_ == nullptr) return;
    histogram_->Record(watch_.ElapsedMicros());
    histogram_ = nullptr;
  }

  /// Abandons the span: nothing is recorded. For outcomes whose latency
  /// would pollute the distribution (e.g. requests shed at admission).
  void Cancel() { histogram_ = nullptr; }

  /// Elapsed microseconds so far, whether or not the span is still live.
  double ElapsedMicros() const { return watch_.ElapsedMicros(); }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

}  // namespace clapf

#endif  // CLAPF_OBS_TRACE_SPAN_H_
