#include "clapf/obs/metrics.h"

#include <algorithm>

#include "clapf/util/logging.h"

namespace clapf {

int MetricShardIndex() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id & (kMetricShards - 1);
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), shards_(kMetricShards) {
  CLAPF_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CLAPF_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  for (auto& shard : shards_) {
    shard.counts = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < shard.counts.size(); ++b) {
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (int64_t c : snap.counts) snap.count += c;
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::span<const double> LatencyBucketsUs() {
  static const double kBounds[] = {1,    2,    5,    10,   20,   50,  100,
                                   200,  500,  1e3,  2e3,  5e3,  1e4, 2e4,
                                   5e4,  1e5,  2e5,  5e5,  1e6,  2e6, 5e6};
  return kBounds;
}

std::span<const double> DrawDepthBuckets() {
  static const double kBounds[] = {1,    2,    4,     8,     16,   32,
                                   64,   128,  256,   512,   1024, 2048,
                                   4096, 8192, 16384, 32768, 65536};
  return kBounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    CLAPF_CHECK(it->second.kind == MetricKind::kCounter);
    return it->second.counter.get();
  }
  Entry entry;
  entry.kind = MetricKind::kCounter;
  entry.counter = std::make_unique<Counter>();
  Counter* out = entry.counter.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    CLAPF_CHECK(it->second.kind == MetricKind::kGauge);
    return it->second.gauge.get();
  }
  Entry entry;
  entry.kind = MetricKind::kGauge;
  entry.gauge = std::make_unique<Gauge>();
  Gauge* out = entry.gauge.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    CLAPF_CHECK(it->second.kind == MetricKind::kHistogram);
    Histogram* existing = it->second.histogram.get();
    CLAPF_CHECK(std::equal(bounds.begin(), bounds.end(),
                           existing->bounds().begin(),
                           existing->bounds().end()));
    return existing;
  }
  Entry entry;
  entry.kind = MetricKind::kHistogram;
  entry.histogram = std::make_unique<Histogram>(bounds);
  Histogram* out = entry.histogram.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  // std::map iterates in name order, so the export order is deterministic.
  for (const auto& [name, entry] : entries_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.counter = entry.counter->Value();
        break;
      case MetricKind::kGauge:
        snap.gauge = entry.gauge->Value();
        break;
      case MetricKind::kHistogram:
        snap.histogram = entry.histogram->Snapshot();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->Reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace clapf
