#include "clapf/obs/exporter.h"

#include <charconv>
#include <cmath>
#include <cstdint>

#include "clapf/util/fs.h"

namespace clapf {

namespace {

// `sgd.epoch_loss` → `clapf_sgd_epoch_loss`. Prometheus metric names admit
// [a-zA-Z0-9_:]; everything else becomes '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = "clapf_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void AppendInt(std::string* out, int64_t v) { *out += std::to_string(v); }

}  // namespace

std::string FormatMetricValue(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;  // a 64-byte buffer always fits the shortest double form
  return std::string(buf, ptr);
}

std::string ExportPrometheusText(
    const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  for (const MetricSnapshot& m : snapshot) {
    const std::string name = PrometheusName(m.name);
    switch (m.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " ";
        AppendInt(&out, m.counter);
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + FormatMetricValue(m.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        int64_t cumulative = 0;
        for (size_t b = 0; b < m.histogram.bounds.size(); ++b) {
          cumulative += m.histogram.counts[b];
          out += name + "_bucket{le=\"" +
                 FormatMetricValue(m.histogram.bounds[b]) + "\"} ";
          AppendInt(&out, cumulative);
          out += '\n';
        }
        out += name + "_bucket{le=\"+Inf\"} ";
        AppendInt(&out, m.histogram.count);
        out += '\n';
        out += name + "_sum " + FormatMetricValue(m.histogram.sum) + "\n";
        out += name + "_count ";
        AppendInt(&out, m.histogram.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string ExportPrometheusText(const MetricsRegistry& registry) {
  return ExportPrometheusText(registry.Snapshot());
}

std::string ExportJson(const std::vector<MetricSnapshot>& snapshot) {
  // Metric names are dotted lowercase identifiers (no quotes/backslashes/
  // control characters), so plain quoting is already valid JSON.
  std::string counters, gauges, histograms;
  for (const MetricSnapshot& m : snapshot) {
    switch (m.kind) {
      case MetricKind::kCounter:
        if (!counters.empty()) counters += ',';
        counters += "\"" + m.name + "\":";
        AppendInt(&counters, m.counter);
        break;
      case MetricKind::kGauge:
        if (!gauges.empty()) gauges += ',';
        gauges += "\"" + m.name + "\":" + FormatMetricValue(m.gauge);
        break;
      case MetricKind::kHistogram: {
        if (!histograms.empty()) histograms += ',';
        histograms += "\"" + m.name + "\":{\"buckets\":[";
        for (size_t b = 0; b < m.histogram.counts.size(); ++b) {
          if (b > 0) histograms += ',';
          histograms += "{\"le\":";
          histograms += b < m.histogram.bounds.size()
                            ? FormatMetricValue(m.histogram.bounds[b])
                            : std::string("\"+Inf\"");
          histograms += ",\"count\":";
          AppendInt(&histograms, m.histogram.counts[b]);
          histograms += '}';
        }
        histograms += "],\"count\":";
        AppendInt(&histograms, m.histogram.count);
        histograms += ",\"sum\":" + FormatMetricValue(m.histogram.sum) + "}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

std::string ExportJson(const MetricsRegistry& registry) {
  return ExportJson(registry.Snapshot());
}

Status WriteMetricsJsonFile(const MetricsRegistry& registry,
                            const std::string& path) {
  return WriteFileAtomic(path, ExportJson(registry) + "\n");
}

}  // namespace clapf
