#ifndef CLAPF_OBS_METRICS_H_
#define CLAPF_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace clapf {

/// Number of independent shards behind every counter/histogram. Threads hash
/// onto shards, so concurrent increments from up to this many threads never
/// contend on one cache line. Must be a power of two.
inline constexpr int kMetricShards = 16;

/// Stable per-thread shard index: threads are numbered in creation order and
/// folded onto [0, kMetricShards). Two threads may share a shard (correct,
/// just slightly contended); one thread never migrates between shards.
int MetricShardIndex();

namespace obs_internal {

/// One cache line holding one atomic payload, so neighbouring shards never
/// false-share.
struct alignas(64) CounterShard {
  std::atomic<int64_t> value{0};
};

/// Lock-free add for atomic doubles (fetch_add on floating-point atomics is
/// C++20 but not universally lowered well; the CAS loop is portable and the
/// slot is per-thread-sharded so the loop almost never retries).
inline void AtomicAddDouble(std::atomic<double>& slot, double delta) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace obs_internal

/// Monotonic event count. The hot path is one relaxed fetch_add on the
/// calling thread's shard; Value() sums the shards (eventually exact — a
/// read concurrent with increments may miss in-flight ones, but every count
/// lands).
class Counter {
 public:
  void Inc(int64_t n = 1) {
    shards_[static_cast<size_t>(MetricShardIndex())].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes the counter. Test/reload support, not for concurrent use with
  /// increments.
  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  obs_internal::CounterShard shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (epoch loss, lr scale, queue depth).
/// A single atomic slot: gauges are set at epoch/barrier cadence, not in the
/// per-iteration hot path, so sharding would buy nothing.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of one histogram. `counts[b]` is the number of
/// recorded values v with bounds[b-1] < v <= bounds[b]; the final entry
/// (counts.size() == bounds.size() + 1) is the overflow bucket
/// (v > bounds.back()).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> counts;
  int64_t count = 0;  ///< total recordings; equals the sum of `counts`
  double sum = 0.0;   ///< sum of recorded values
};

/// Fixed-bucket histogram with per-thread shards. Record() walks the (small,
/// immutable) bound array and does one relaxed increment plus one relaxed
/// add on the calling thread's shard — no locks, no allocation, safe from
/// any number of threads. Bucket semantics match Prometheus: upper bounds
/// are inclusive, plus an implicit +Inf overflow bucket.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::span<const double> bounds);

  void Record(double v) {
    size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    Shard& shard = shards_[static_cast<size_t>(MetricShardIndex())];
    shard.counts[b].fetch_add(1, std::memory_order_relaxed);
    obs_internal::AtomicAddDouble(shard.sum, v);
  }

  HistogramSnapshot Snapshot() const;

  /// Zeroes all shards; bucket bounds are immutable.
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    // counts.size() == bounds.size() + 1 (overflow bucket last).
    std::vector<std::atomic<int64_t>> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// Default latency bucket bounds in microseconds: 1us .. 5s, roughly
/// logarithmic (1-2-5 per decade).
std::span<const double> LatencyBucketsUs();

/// Power-of-two bucket bounds 1, 2, 4, ... 2^16 for rank/draw-depth style
/// distributions.
std::span<const double> DrawDepthBuckets();

/// What one registry entry is.
enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one named metric, for exporters.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t counter = 0;         // kCounter
  double gauge = 0.0;          // kGauge
  HistogramSnapshot histogram; // kHistogram
};

/// Named home for counters, gauges, and histograms.
///
/// Usage: resolve handles once (registration takes a mutex), record through
/// the handles forever (lock-free). Handles are stable for the registry's
/// lifetime; re-resolving a name returns the same object, so independent
/// components naturally share a metric by naming it identically.
///
/// Naming scheme (see DESIGN.md "Observability"): lowercase dotted paths,
/// `<subsystem>.<metric>`, with `_total` for monotonic counters and a unit
/// suffix (`_us`, `_depth`) for histograms — e.g. `sgd.updates_total`,
/// `serving.query.latency_us`.
///
/// Thread-safe: registration, recording, and Snapshot() may run
/// concurrently.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, registering it on first use.
  /// Aborts if `name` is already registered as a different kind.
  Counter* GetCounter(const std::string& name);

  /// Returns the gauge named `name`, registering it on first use.
  Gauge* GetGauge(const std::string& name);

  /// Returns the histogram named `name`; `bounds` is consumed on first
  /// registration and must match on later calls (checked).
  Histogram* GetHistogram(const std::string& name,
                          std::span<const double> bounds);

  /// Point-in-time copy of every registered metric, sorted by name (the
  /// deterministic order every exporter relies on).
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes every metric's value but keeps all registrations (and therefore
  /// every outstanding handle) valid. For tests and counter-reset endpoints.
  void ResetValues();

  /// Number of registered metrics.
  size_t size() const;

  /// Process-wide default registry, used by components that are not handed
  /// an explicit one.
  static MetricsRegistry& Default();

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace clapf

#endif  // CLAPF_OBS_METRICS_H_
