#ifndef CLAPF_OBS_EXPORTER_H_
#define CLAPF_OBS_EXPORTER_H_

#include <string>
#include <vector>

#include "clapf/obs/metrics.h"
#include "clapf/util/status.h"

namespace clapf {

/// Renders `value` with the shortest round-trip decimal representation
/// (std::to_chars), so exports are bit-deterministic for identical values
/// and never lose precision. "nan"/"inf"/"-inf" for non-finite values.
std::string FormatMetricValue(double value);

/// Prometheus text-exposition rendering of every metric in `snapshot`.
/// Metric names are prefixed with `clapf_` and dots become underscores
/// (`sgd.updates_total` → `clapf_sgd_updates_total`); histograms expand to
/// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`, ending
/// with the `le="+Inf"` bucket, exactly as Prometheus expects. Input order
/// is preserved; pass a MetricsRegistry::Snapshot() for sorted-by-name
/// (deterministic) output.
std::string ExportPrometheusText(const std::vector<MetricSnapshot>& snapshot);
std::string ExportPrometheusText(const MetricsRegistry& registry);

/// JSON rendering: one object with "counters", "gauges", and "histograms"
/// members keyed by the raw (dotted) metric names. Histograms carry their
/// non-cumulative per-bucket counts alongside `count` and `sum`. Key order
/// follows the snapshot order, so registry exports are deterministic.
std::string ExportJson(const std::vector<MetricSnapshot>& snapshot);
std::string ExportJson(const MetricsRegistry& registry);

/// Dumps ExportJson(registry) to `path` atomically (temp file + rename), so
/// a scraper never reads a half-written dump.
Status WriteMetricsJsonFile(const MetricsRegistry& registry,
                            const std::string& path);

}  // namespace clapf

#endif  // CLAPF_OBS_EXPORTER_H_
