// Tag recommendation scenario (the paper's UserTag dataset): suggest tags a
// user is likely to adopt. Tags have multiple correct answers per user, the
// setting where MAP- and MRR-oriented objectives differ most — this example
// trains both CLAPF instantiations and contrasts them across cutoffs.

#include <cstdio>

#include "clapf/clapf.h"
#include "clapf/util/flags.h"
#include "clapf/util/string_util.h"
#include "clapf/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace clapf;

  int64_t iterations = 120000;
  double lambda_map = 0.3;  // paper's tuned λ for CLAPF-MAP on UserTag
  double lambda_mrr = 0.2;  // paper's tuned λ for CLAPF-MRR on UserTag
  FlagParser flags;
  flags.AddInt("iterations", &iterations, "SGD iterations per method");
  flags.AddDouble("lambda_map", &lambda_map, "tradeoff for CLAPF-MAP");
  flags.AddDouble("lambda_mrr", &lambda_mrr, "tradeoff for CLAPF-MRR");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // UserTag-shaped synthetic data, scaled for an example run.
  SyntheticConfig config = PresetConfig(DatasetPreset::kUserTag);
  config.num_users = 400;
  config.num_items = 800;
  config.num_interactions = 26000;
  Dataset data = *GenerateSynthetic(config);
  std::printf("user-tag dataset: %s\n", data.Summary().c_str());

  TrainTestSplit split = SplitRandom(data, 0.5, 11);
  Evaluator evaluator(&split.train, &split.test);

  auto train_variant = [&](ClapfVariant variant, double lambda) {
    ClapfOptions options;
    options.variant = variant;
    options.lambda = lambda;
    options.sgd.iterations = iterations;
    options.sgd.seed = 5;
    auto trainer = std::make_unique<ClapfTrainer>(options);
    CLAPF_CHECK_OK(trainer->Train(split.train));
    return trainer;
  };

  auto map_model = train_variant(ClapfVariant::kMap, lambda_map);
  auto mrr_model = train_variant(ClapfVariant::kMrr, lambda_mrr);

  EvalSummary map_summary =
      evaluator.Evaluate(*map_model->model(), PaperCutoffs());
  EvalSummary mrr_summary =
      evaluator.Evaluate(*mrr_model->model(), PaperCutoffs());

  TablePrinter table;
  table.SetHeader({"k", "CLAPF-MAP Recall@k", "CLAPF-MRR Recall@k",
                   "CLAPF-MAP NDCG@k", "CLAPF-MRR NDCG@k"});
  for (int k : PaperCutoffs()) {
    table.AddRow({std::to_string(k),
                  FormatDouble(map_summary.AtK(k).recall, 3),
                  FormatDouble(mrr_summary.AtK(k).recall, 3),
                  FormatDouble(map_summary.AtK(k).ndcg, 3),
                  FormatDouble(mrr_summary.AtK(k).ndcg, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "headline: CLAPF-MAP MAP=%.3f MRR=%.3f | CLAPF-MRR MAP=%.3f "
      "MRR=%.3f\n",
      map_summary.map, map_summary.mrr, mrr_summary.map, mrr_summary.mrr);

  // Recommend tags for a handful of users with the MAP model.
  for (UserId u = 0; u < 3; ++u) {
    auto top = map_model->model()->TopKForUser(u, 5, &split.train);
    std::printf("user %d suggested tags:", u);
    for (const ScoredItem& tag : top) std::printf(" #%d", tag.item);
    std::printf("\n");
  }
  return 0;
}
