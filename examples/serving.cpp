// Serving workflow: tune CLAPF's hyper-parameters on validation data with
// the model-selection API, train the winner (with crash-safe checkpoints),
// package it behind the Recommender facade, persist it, and answer top-k
// queries — including a cold-start user, an exclusion list, and a resilience
// drill: when the served model file is corrupt, degrade to popularity
// ranking, then restore full service from the newest valid checkpoint.
// Finishes with the always-on serving layer: a ModelServer overload drill
// (bounded admission queue shedding a burst) and a validated hot reload
// (canary gate rejecting a corrupt candidate, then swapping in a good one
// while queries run).

#include <atomic>
#include <cstdio>
#include <thread>

#include "clapf/clapf.h"
#include "clapf/util/flags.h"
#include "clapf/util/string_util.h"

int main(int argc, char** argv) {
  using namespace clapf;

  std::string model_path = "/tmp/clapf_serving.clpf";
  FlagParser flags;
  flags.AddString("model_out", &model_path, "where the model is persisted");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // Catalog-sized implicit feedback; user num_users is a cold user we will
  // serve via the popularity fallback (no history).
  SyntheticConfig config = PresetConfig(DatasetPreset::kMl100k);
  config.num_users = 400;
  config.num_items = 800;
  config.num_interactions = 22000;
  Dataset data = *GenerateSynthetic(config);
  std::printf("catalog: %s\n", ComputeStats(data).ToString().c_str());

  // 1. Model selection, the paper's protocol: λ then T by validation NDCG@5.
  ClapfOptions base;
  base.sgd.iterations = 400000;
  base.sgd.learning_rate = 0.05;
  base.sgd.final_learning_rate_fraction = 0.05;
  auto lambda_pick = SelectLambda(data, base, {0.0, 0.1, 0.2, 0.4},
                                  SelectionMetric::kNdcgAt5, /*seed=*/7);
  CLAPF_CHECK_OK(lambda_pick.status());
  std::printf("selected λ = %.1f (validation NDCG@5 per λ:",
              lambda_pick->best_options.lambda);
  for (const auto& trial : lambda_pick->trials) {
    std::printf(" %.3f", trial.validation_score);
  }
  std::printf(")\n");

  auto budget_pick =
      SelectIterations(data, lambda_pick->best_options,
                       {100000, 400000, 1600000},
                       SelectionMetric::kNdcgAt5, /*seed=*/7);
  CLAPF_CHECK_OK(budget_pick.status());
  std::printf("selected T = %lld\n",
              static_cast<long long>(
                  budget_pick->best_options.sgd.iterations));

  // 2. Train the tuned configuration on the full data, snapshotting every
  // 100k iterations so a crash (or, below, a corrupted model file) never
  // costs the whole run. The divergence guard halts on numerical blow-up
  // instead of serving a NaN-riddled model.
  ClapfOptions serve_options = budget_pick->best_options;
  serve_options.checkpoint.dir = "/tmp/clapf_serving_ckpt";
  serve_options.checkpoint.interval = 100000;
  serve_options.sgd.divergence.policy = DivergencePolicy::kHalt;
  // HogWild the final fit: lock-free parallel SGD over the shared model.
  // Checkpoints land at worker barriers, so crash recovery works unchanged.
  serve_options.sgd.num_threads = 2;
  ClapfTrainer trainer(serve_options);
  CLAPF_CHECK_OK(trainer.Train(data));

  // 3. Package and persist.
  auto recommender = Recommender::Create(*trainer.model(), data);
  CLAPF_CHECK_OK(recommender.status());
  CLAPF_CHECK_OK(recommender->Save(model_path));
  std::printf("model saved to %s\n", model_path.c_str());

  // 4. Serve queries through the QueryOptions surface.
  auto warm = recommender->Recommend(/*u=*/3, 5, QueryOptions{});
  CLAPF_CHECK_OK(warm.status());
  std::printf("warm user 3:");
  for (const ScoredItem& item : *warm) {
    std::printf(" %d(%.2f)", item.item, item.score);
  }
  std::printf("\n");

  // Business rule: items 0-9 are out of stock.
  QueryOptions stock_filter;
  for (ItemId i = 0; i < 10; ++i) stock_filter.exclude.push_back(i);
  auto filtered = recommender->Recommend(3, 5, stock_filter);
  CLAPF_CHECK_OK(filtered.status());
  std::printf("warm user 3 (stock-filtered):");
  for (const ScoredItem& item : *filtered) std::printf(" %d", item.item);
  std::printf("\n");

  // A cold user (one with no training history) gets popularity — unless the
  // caller opts out via cold_start_fallback = false.
  UserId cold_user = -1;
  for (UserId u = 0; u < data.num_users(); ++u) {
    if (data.NumItemsOf(u) == 0) {
      cold_user = u;
      break;
    }
  }
  if (cold_user >= 0) {
    auto cold = recommender->Recommend(cold_user, 5, QueryOptions{});
    CLAPF_CHECK_OK(cold.status());
    std::printf("cold user %d (popularity fallback):", cold_user);
    for (const ScoredItem& item : *cold) std::printf(" %d", item.item);
    std::printf("\n");
  } else {
    std::printf("no cold user in this draw; skipping fallback demo\n");
  }

  // Nightly-precompute shape: one batched call scores a whole cohort,
  // sharded across a thread pool, with the same options applied to every
  // user.
  std::vector<UserId> cohort;
  for (UserId u = 0; u < 32; ++u) cohort.push_back(u);
  auto batch = recommender->RecommendBatch(cohort, 5, stock_filter);
  CLAPF_CHECK_OK(batch.status());
  size_t served = 0;
  for (const auto& list : *batch) served += list.size();
  std::printf("batch: served %zu items across %zu users\n", served,
              batch->size());

  // 5. Reload from disk and confirm identical scoring.
  auto reloaded = Recommender::Load(model_path, data);
  CLAPF_CHECK_OK(reloaded.status());
  std::printf("reload check: score(3, 5) %.6f == %.6f\n",
              *recommender->Score(3, 5), *reloaded->Score(3, 5));

  // 6. Resilience drill: bit rot corrupts the served model file. The CRC in
  // the model format turns silent corruption into a loud load failure...
  {
    auto bytes = ReadFileToString(model_path);
    CLAPF_CHECK_OK(bytes.status());
    std::string damaged = *bytes;
    damaged[damaged.size() / 2] ^= 0x08;
    CLAPF_CHECK_OK(WriteStringToFile(model_path, damaged));
  }
  auto broken = Recommender::Load(model_path, data);
  std::printf("corrupted model load: %s\n", broken.status().ToString().c_str());

  // ...so serving degrades to popularity ranking instead of silently
  // returning garbage scores.
  if (!broken.ok()) {
    PopRankTrainer fallback;
    CLAPF_CHECK_OK(fallback.Train(data));
    std::vector<double> pop_scores;
    fallback.ScoreItems(/*u=*/3, &pop_scores);
    auto top = SelectTopK(pop_scores, /*exclude=*/{}, 5);
    std::printf("degraded mode (PopRank) user 3:");
    for (const ScoredItem& item : top) std::printf(" %d", item.item);
    std::printf("\n");
  }

  // Full service comes back from the newest valid checkpoint: reload it,
  // republish the model atomically, and serve factorization scores again.
  CheckpointManager checkpoints(serve_options.checkpoint);
  CLAPF_CHECK_OK(checkpoints.Init());
  auto recovered = checkpoints.LoadLatest();
  CLAPF_CHECK_OK(recovered.status());
  std::printf("recovered checkpoint from iteration %lld\n",
              static_cast<long long>(recovered->state.iteration));
  CLAPF_CHECK_OK(SaveModelAtomic(recovered->model, model_path));
  auto restored = Recommender::Load(model_path, data);
  CLAPF_CHECK_OK(restored.status());
  std::printf("restored service: score(3, 5) = %.6f\n",
              *restored->Score(3, 5));

  // 7. The always-on serving layer. A ModelServer owns the admission queue,
  // the canary-gated hot swap, and the popularity fallback; everything above
  // becomes "publish a candidate" + "answer queries".
  ServerOptions server_options;
  server_options.num_threads = 2;
  server_options.max_queue_depth = 2;  // tiny on purpose: we want shedding
  ModelServer server(data, server_options);
  CLAPF_CHECK_OK(server.PublishModel(*trainer.model()));
  std::printf("model server: published v%lld\n",
              static_cast<long long>(server.version()));

  // Overload drill: every admitted request is stalled by an injected fault,
  // so a burst of clients piles past the depth-2 admission bound. Excess
  // requests come back Unavailable ("shed") instead of queuing without
  // bound — and the server keeps answering what it admitted.
  FaultInjector::Instance().Arm(FaultPoint::kServeQueueStall,
                                {.trigger_at_hit = 1, .max_fires = -1});
  std::atomic<int> ok_count{0}, shed_count{0};
  {
    std::vector<std::thread> burst;
    for (int c = 0; c < 4; ++c) {
      burst.emplace_back([&server, &ok_count, &shed_count, c] {
        for (int r = 0; r < 4; ++r) {
          auto got = server.Recommend(c, 5);
          if (got.ok()) {
            ok_count.fetch_add(1);
          } else if (got.status().code() == StatusCode::kUnavailable) {
            shed_count.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : burst) t.join();
  }
  FaultInjector::Instance().Reset();
  std::printf("overload drill: %d served, %d shed (typed Unavailable)\n",
              ok_count.load(), shed_count.load());

  // Hot-reload drill, part 1: a corrupt candidate. The injected fault
  // poisons the candidate's factors in flight; the canary gate's finite
  // scan rejects it before the swap, and v1 keeps serving untouched.
  FaultInjector::Instance().Arm(FaultPoint::kServeCorruptCandidate, {});
  Status rejected = server.PublishModel(recovered->model);
  FaultInjector::Instance().Reset();
  std::printf("corrupt candidate: %s (still serving v%lld)\n",
              rejected.ToString().c_str(),
              static_cast<long long>(server.version()));

  // Part 2: a clean candidate hot-swaps while a reader hammers the server.
  // Readers copy the snapshot pointer and score lock-free, so in-flight
  // queries finish on the old model and new ones pick up the new version.
  std::atomic<bool> stop{false};
  std::atomic<int> swap_served{0};
  std::thread reader([&server, &stop, &swap_served] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (server.Recommend(3, 5).ok()) swap_served.fetch_add(1);
    }
  });
  CLAPF_CHECK_OK(server.PublishModel(recovered->model));
  while (swap_served.load() < 10) std::this_thread::yield();
  stop.store(true);
  reader.join();
  std::printf("hot reload: now serving v%lld; %d queries answered during "
              "the swap window\n",
              static_cast<long long>(server.version()), swap_served.load());

  // Governor drill: an ondemand governor watches the same metrics and, on
  // pressure (here: the sheds recorded by the overload drill above), clamps
  // every knob to its defensive bound — then decays back once calm. Each
  // movement lands in the flight recorder next to the sheds that caused it.
  server.TickGovernor();  // performance policy: a deliberate no-op
  GovernorKnobs knobs = server.governor().knobs();
  std::printf("governor (%s): queue_depth=%lld after tick — static policy "
              "never moves knobs\n",
              GovernorPolicyName(server.governor().policy()),
              static_cast<long long>(knobs.max_queue_depth));

  // The incident black box: everything the serving layer decided above —
  // sheds, the canary reject, publishes — in order, dumpable as JSON at any
  // time (and automatically on a breaker trip via flight_dump_path).
  int shown = 0;
  for (const FlightEvent& event : server.flight_recorder().Snapshot()) {
    std::printf("  flight[%llu] %s: %s\n",
                static_cast<unsigned long long>(event.seq),
                FlightEventKindName(event.kind), event.detail);
    if (++shown >= 8) break;
  }
  std::printf("serving stats: %s\n", server.stats().ToString().c_str());

  // 8. Sharded scatter-gather serving. The same catalog partitioned into
  // four shards, each with its own packed slice, canary gate, breaker, and
  // flight stream, behind the same PublishModel/RecommendOne surface —
  // and answers BIT-IDENTICAL to the monolithic server above.
  ServerOptions shard_options = server_options;
  shard_options.max_queue_depth = 64;
  shard_options.num_shards = 4;
  shard_options.per_tenant_quota = 8;
  ShardedModelServer sharded(data, shard_options);
  std::printf("sharded server: %s\n", sharded.shard_map().ToString().c_str());
  CLAPF_CHECK_OK(sharded.PublishModel(recovered->model));
  auto mono_answer = server.Recommend(3, 5);
  auto shard_answer = sharded.RecommendOne(3, 5);
  CLAPF_CHECK_OK(mono_answer.status());
  CLAPF_CHECK_OK(shard_answer.status());
  std::printf("scatter-gather check: monolithic item %d (%.6f) == "
              "sharded item %d (%.6f)\n",
              (*mono_answer)[0].item, (*mono_answer)[0].score,
              (*shard_answer)[0].item, (*shard_answer)[0].score);

  // Incremental hot reload: republish into shard 2 only. The other three
  // shards keep serving their current slices untouched — the publish gates
  // and repacks a quarter of the catalog.
  CLAPF_CHECK_OK(sharded.PublishModel(
      PublishRequest(recovered->model).WithShard(2)));
  std::printf("per-shard reload: versions");
  for (int64_t v : sharded.shard_versions()) {
    std::printf(" v%lld", static_cast<long long>(v));
  }
  std::printf(" (only shard 2 moved)\n");

  // Multi-tenancy: tenant "acme" gets its own serving chain (and its own
  // breaker windows and admission quota); the default tenant is untouched.
  CLAPF_CHECK_OK(sharded.PublishModel(
      PublishRequest(recovered->model).WithTenant("acme")));
  auto acme = sharded.RecommendOne(3, 5, {}, "acme");
  CLAPF_CHECK_OK(acme.status());
  std::printf("tenants:");
  for (const std::string& name : sharded.tenants()) {
    std::printf(" \"%s\"", name.c_str());
  }
  std::printf("\nsharded stats:\n%s\n", sharded.stats().ToString().c_str());
  return 0;
}
