// Quickstart: generate an implicit-feedback dataset, train CLAPF-MAP, and
// print held-out ranking metrics plus a few recommendations.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "clapf/clapf.h"

int main() {
  using namespace clapf;

  // 1. Data: a MovieLens-100K-shaped synthetic dataset (see DESIGN.md §4),
  //    scaled down so the example runs in seconds.
  SyntheticConfig config = PresetConfig(DatasetPreset::kMl100k);
  config.num_users = 300;
  config.num_items = 500;
  config.num_interactions = 18000;
  Dataset data = *GenerateSynthetic(config);
  std::printf("generated %s\n", data.Summary().c_str());

  // 2. The paper's protocol: random 50/50 train/test split.
  TrainTestSplit split = SplitRandom(data, /*train_fraction=*/0.5,
                                     /*seed=*/42);

  // 3. Train CLAPF-MAP (Eq. 18) with the uniform sampler.
  ClapfOptions options;
  options.variant = ClapfVariant::kMap;
  options.lambda = 0.4;            // tradeoff between listwise and pairwise
  options.sgd.num_factors = 20;
  options.sgd.iterations = 100000;
  options.sgd.learning_rate = 0.05;
  options.sgd.seed = 1;
  ClapfTrainer trainer(options);
  Stopwatch watch;
  Status status = trainer.Train(split.train);
  if (!status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("trained %s in %.2fs (avg loss %.4f)\n", trainer.name().c_str(),
              watch.ElapsedSeconds(), trainer.last_average_loss());

  // 4. Evaluate with the paper's metrics at k = 5.
  Evaluator evaluator(&split.train, &split.test);
  EvalSummary summary = evaluator.Evaluate(*trainer.model(), {5});
  std::printf("test metrics: %s\n", summary.ToString().c_str());

  // 5. Recommend: top-5 unseen items for the first few users.
  for (UserId u = 0; u < 3; ++u) {
    auto top = trainer.model()->TopKForUser(u, 5, &split.train);
    std::printf("user %d  ->", u);
    for (const ScoredItem& item : top) {
      std::printf("  item %d (%.3f)", item.item, item.score);
    }
    std::printf("\n");
  }
  return 0;
}
