// Movie recommendation scenario: compare CLAPF+ against BPR and a popularity
// baseline on a MovieLens-shaped dataset, then persist the winning model.
//
// By default the data is synthesized (ML100K shape). To run on the real
// MovieLens 100K file instead, pass the path to `u.data`:
//   ./build/examples/movie_recommender --ratings /path/to/u.data

#include <cstdio>
#include <string>

#include "clapf/clapf.h"
#include "clapf/util/flags.h"
#include "clapf/util/string_util.h"
#include "clapf/util/table_printer.h"

namespace {

clapf::Dataset LoadOrGenerate(const std::string& ratings_path) {
  using namespace clapf;
  if (!ratings_path.empty()) {
    LoadOptions options;  // MovieLens u.data: tab-separated, ratings > 3 kept
    options.format = FileFormat::kTabSeparated;
    auto loaded = LoadInteractions(ratings_path, options);
    CLAPF_CHECK_OK(loaded.status());
    return *std::move(loaded);
  }
  SyntheticConfig config = PresetConfig(DatasetPreset::kMl100k);
  config.num_users = 500;
  config.num_items = 900;
  config.num_interactions = 29000;
  return *GenerateSynthetic(config);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clapf;

  std::string ratings_path;
  int64_t iterations = 150000;
  std::string model_out = "/tmp/clapf_movies.clpf";
  FlagParser flags;
  flags.AddString("ratings", &ratings_path,
                  "path to MovieLens u.data (empty = synthesize)");
  flags.AddInt("iterations", &iterations, "SGD iterations per method");
  flags.AddString("model_out", &model_out, "where to save the CLAPF+ model");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }

  Dataset data = LoadOrGenerate(ratings_path);
  std::printf("movies dataset: %s\n", data.Summary().c_str());
  TrainTestSplit split = SplitRandom(data, 0.5, 7);
  Evaluator evaluator(&split.train, &split.test);

  TablePrinter table;
  table.SetHeader({"Method", "Prec@5", "Recall@5", "NDCG@5", "MAP", "MRR",
                   "train"});

  auto report = [&](Trainer& trainer) {
    Stopwatch watch;
    CLAPF_CHECK_OK(trainer.Train(split.train));
    const double seconds = watch.ElapsedSeconds();
    EvalSummary s = evaluator.Evaluate(trainer, {5});
    table.AddRow({trainer.name(), FormatDouble(s.AtK(5).precision, 3),
                  FormatDouble(s.AtK(5).recall, 3),
                  FormatDouble(s.AtK(5).ndcg, 3), FormatDouble(s.map, 3),
                  FormatDouble(s.mrr, 3), FormatDuration(seconds)});
  };

  PopRankTrainer pop;
  report(pop);

  BprOptions bpr_options;
  bpr_options.sgd.iterations = iterations;
  BprTrainer bpr(bpr_options);
  report(bpr);

  ClapfOptions clapf_options;
  clapf_options.variant = ClapfVariant::kMap;
  clapf_options.lambda = 0.4;
  clapf_options.sampler = ClapfSamplerKind::kDss;  // CLAPF+
  clapf_options.sgd.iterations = iterations;
  ClapfTrainer clapf_plus(clapf_options);
  report(clapf_plus);

  std::printf("%s", table.ToString().c_str());

  // Persist the CLAPF+ model and prove the round trip scores identically.
  CLAPF_CHECK_OK(SaveModel(*clapf_plus.model(), model_out));
  auto loaded = LoadModel(model_out);
  CLAPF_CHECK_OK(loaded.status());
  std::printf("model saved to %s (round-trip score match: %s)\n",
              model_out.c_str(),
              loaded->Score(0, 0) == clapf_plus.model()->Score(0, 0)
                  ? "yes"
                  : "NO");

  // Show a recommendation list for one user.
  auto top = loaded->TopKForUser(0, 10, &split.train);
  std::printf("top-10 movies for user 0:");
  for (const ScoredItem& item : top) std::printf(" %d", item.item);
  std::printf("\n");
  return 0;
}
