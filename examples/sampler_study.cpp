// Sampler study: reproduce the paper's Fig. 4 experiment shape at example
// scale — train CLAPF-MAP with Uniform / Positive / Negative / DSS sampling
// and watch test MAP converge over iterations.

#include <cstdio>
#include <vector>

#include "clapf/clapf.h"
#include "clapf/util/flags.h"
#include "clapf/util/string_util.h"
#include "clapf/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace clapf;

  int64_t iterations = 60000;
  int64_t probe_every = 10000;
  FlagParser flags;
  flags.AddInt("iterations", &iterations, "total SGD iterations");
  flags.AddInt("probe_every", &probe_every, "evaluate test MAP this often");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }

  SyntheticConfig config = PresetConfig(DatasetPreset::kMl100k);
  config.num_users = 400;
  config.num_items = 700;
  config.num_interactions = 24000;
  Dataset data = *GenerateSynthetic(config);
  TrainTestSplit split = SplitRandom(data, 0.5, 13);
  Evaluator evaluator(&split.train, &split.test);
  std::printf("dataset: %s\n", data.Summary().c_str());

  const std::vector<ClapfSamplerKind> samplers = {
      ClapfSamplerKind::kUniform, ClapfSamplerKind::kPositiveOnly,
      ClapfSamplerKind::kNegativeOnly, ClapfSamplerKind::kDss};
  const std::vector<std::string> names = {"Uniform", "Positive", "Negative",
                                          "DSS"};

  // One MAP-vs-iteration series per sampler.
  std::vector<std::vector<double>> series(samplers.size());
  for (size_t s = 0; s < samplers.size(); ++s) {
    ClapfOptions options;
    options.variant = ClapfVariant::kMap;
    options.lambda = 0.4;
    options.sampler = samplers[s];
    options.sgd.iterations = iterations;
    options.sgd.seed = 5;
    ClapfTrainer trainer(options);
    trainer.SetProbe(probe_every, [&](int64_t, const Trainer& t) {
      series[s].push_back(evaluator.Evaluate(t, {5}).map);
    });
    CLAPF_CHECK_OK(trainer.Train(split.train));
    std::printf("finished %-22s final MAP=%.4f\n",
                (std::string("CLAPF-MAP/") + names[s]).c_str(),
                series[s].empty() ? 0.0 : series[s].back());
  }

  TablePrinter table;
  std::vector<std::string> header{"iteration"};
  for (const auto& n : names) header.push_back(n);
  table.SetHeader(header);
  const size_t points = series[0].size();
  for (size_t p = 0; p < points; ++p) {
    std::vector<std::string> row{
        std::to_string(static_cast<long long>((p + 1) * probe_every))};
    for (const auto& s : series) row.push_back(FormatDouble(s[p], 4));
    table.AddRow(row);
  }
  std::printf("test MAP by iteration (Fig. 4 shape):\n%s",
              table.ToString().c_str());
  return 0;
}
